"""Two-dimensional points and vectors.

The whole reproduction lives in the Euclidean plane (the paper's Section 6
sketches higher dimensions but leaves details to future work), so a small,
immutable, numpy-friendly 2D point type keeps the rest of the codebase
readable.  A :class:`Point` doubles as a displacement vector; the algebra
(sum, difference, scaling, dot/cross products) is what the paper's
constructions use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple, Union

import numpy as np

from .tolerances import EPS

Coordinate = Union[float, int]


@dataclass(frozen=True)
class Point:
    """An immutable point (or displacement vector) in the plane."""

    x: float
    y: float

    # -- construction -----------------------------------------------------
    @staticmethod
    def of(obj: "PointLike") -> "Point":
        """Coerce a 2-sequence, numpy row or Point into a :class:`Point`."""
        if isinstance(obj, Point):
            return obj
        x, y = obj
        return Point(float(x), float(y))

    @staticmethod
    def origin() -> "Point":
        """The origin (0, 0)."""
        return Point(0.0, 0.0)

    @staticmethod
    def polar(radius: float, angle: float) -> "Point":
        """Point at ``radius`` from the origin in direction ``angle`` (radians)."""
        return Point(radius * math.cos(angle), radius * math.sin(angle))

    # -- algebra -----------------------------------------------------------
    def __add__(self, other: "PointLike") -> "Point":
        other = Point.of(other)
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "PointLike") -> "Point":
        other = Point.of(other)
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Point":
        return Point(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __getitem__(self, index: int) -> float:
        return (self.x, self.y)[index]

    def __len__(self) -> int:
        return 2

    # -- metrics -----------------------------------------------------------
    def dot(self, other: "PointLike") -> float:
        """Euclidean inner product."""
        other = Point.of(other)
        return self.x * other.x + self.y * other.y

    def cross(self, other: "PointLike") -> float:
        """Z-component of the 3D cross product (signed parallelogram area)."""
        other = Point.of(other)
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length of this vector."""
        return math.hypot(self.x, self.y)

    def norm_squared(self) -> float:
        """Squared Euclidean length (avoids the sqrt)."""
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "PointLike") -> float:
        """Euclidean distance to ``other``."""
        other = Point.of(other)
        return math.hypot(self.x - other.x, self.y - other.y)

    def angle(self) -> float:
        """Direction of this vector in ``(-pi, pi]`` (``atan2`` convention)."""
        return math.atan2(self.y, self.x)

    def angle_to(self, other: "PointLike") -> float:
        """Direction of the vector from ``self`` to ``other``."""
        other = Point.of(other)
        return math.atan2(other.y - self.y, other.x - self.x)

    # -- geometric helpers ---------------------------------------------------
    def unit(self) -> "Point":
        """Unit vector in the direction of this vector.

        Raises :class:`ValueError` for the zero vector.
        """
        n = self.norm()
        if n <= EPS:
            raise ValueError("cannot normalise a (near-)zero vector")
        return Point(self.x / n, self.y / n)

    def direction_to(self, other: "PointLike") -> "Point":
        """Unit vector pointing from ``self`` to ``other``."""
        return (Point.of(other) - self).unit()

    def perpendicular(self) -> "Point":
        """This vector rotated by +90 degrees."""
        return Point(-self.y, self.x)

    def rotated(self, angle: float, about: "PointLike" = (0.0, 0.0)) -> "Point":
        """This point rotated by ``angle`` radians about ``about``."""
        about = Point.of(about)
        dx, dy = self.x - about.x, self.y - about.y
        c, s = math.cos(angle), math.sin(angle)
        return Point(about.x + c * dx - s * dy, about.y + s * dx + c * dy)

    def toward(self, other: "PointLike", distance: float) -> "Point":
        """The point at ``distance`` from ``self`` in the direction of ``other``.

        This is the primitive the paper's safe regions are defined with:
        the safe-region centre is ``Y0.toward(X0, V_Y / 8)``.
        """
        other = Point.of(other)
        gap = self.distance_to(other)
        if gap <= EPS:
            return self
        t = distance / gap
        return Point(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)

    def midpoint(self, other: "PointLike") -> "Point":
        """Midpoint of the segment from ``self`` to ``other``."""
        other = Point.of(other)
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def lerp(self, other: "PointLike", t: float) -> "Point":
        """Linear interpolation: ``self`` at ``t=0``, ``other`` at ``t=1``."""
        other = Point.of(other)
        return Point(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)

    def is_close(self, other: "PointLike", *, eps: float = EPS) -> bool:
        """True when the two points coincide up to ``eps``."""
        return self.distance_to(other) <= eps

    # -- conversions --------------------------------------------------------
    def as_array(self) -> np.ndarray:
        """This point as a numpy array of shape ``(2,)``."""
        return np.array([self.x, self.y], dtype=float)

    def as_tuple(self) -> Tuple[float, float]:
        """This point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Point({self.x:.6g}, {self.y:.6g})"


PointLike = Union[Point, Sequence[Coordinate], np.ndarray]


def centroid(points: Iterable[PointLike]) -> Point:
    """Arithmetic mean of a non-empty collection of points."""
    pts = [Point.of(p) for p in points]
    if not pts:
        raise ValueError("centroid of an empty point set is undefined")
    sx = sum(p.x for p in pts)
    sy = sum(p.y for p in pts)
    return Point(sx / len(pts), sy / len(pts))


def points_to_array(points: Iterable[PointLike]) -> np.ndarray:
    """Stack points into an ``(n, 2)`` float array.

    An input that already is an ``(n, 2)`` array is passed through without
    the per-Point loop — the form the array-native engine paths hand in.
    """
    if isinstance(points, np.ndarray):
        arr = np.asarray(points, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("expected an array of shape (n, 2)")
        return arr
    pts = [Point.of(p) for p in points]
    if not pts:
        return np.zeros((0, 2), dtype=float)
    return np.array([[p.x, p.y] for p in pts], dtype=float)


def array_to_points(array: np.ndarray) -> list[Point]:
    """Convert an ``(n, 2)`` array back into a list of :class:`Point`."""
    array = np.asarray(array, dtype=float)
    if array.ndim != 2 or array.shape[1] != 2:
        raise ValueError("expected an array of shape (n, 2)")
    return [Point(float(x), float(y)) for x, y in array]


def squared_distance_matrix(array: np.ndarray) -> np.ndarray:
    """Full ``(n, n)`` matrix of *squared* distances of an ``(n, 2)`` array.

    Built from two 2D broadcasts (``dx*dx + dy*dy``) rather than an
    ``(n, n, 2)`` temporary with an axis reduction — same values, roughly
    half the memory traffic.  Because ``sqrt`` is monotone and correctly
    rounded, minima/maxima commute with it, so callers that only need the
    extreme *distance* can reduce over this matrix and take one square
    root at the end — bit-identical to reducing over the rooted matrix.
    """
    arr = np.asarray(array, dtype=float)
    dx = arr[:, 0, None] - arr[None, :, 0]
    dy = arr[:, 1, None] - arr[None, :, 1]
    return dx * dx + dy * dy


def pairwise_distance_matrix(array: np.ndarray) -> np.ndarray:
    """Full ``(n, n)`` distance matrix of an ``(n, 2)`` coordinate array.

    This is the array-native core of the metrics hot path: compute it once
    per observation and derive the diameter, the minimum separation and the
    edge lengths from the same matrix.
    """
    return np.sqrt(squared_distance_matrix(array))


def pairwise_distances(points: Sequence[PointLike]) -> np.ndarray:
    """Full ``(n, n)`` matrix of pairwise Euclidean distances."""
    return pairwise_distance_matrix(points_to_array(points))


def max_pairwise_distance(points: Sequence[PointLike]) -> float:
    """Diameter of the point set (0 for fewer than two points)."""
    if len(points) < 2:
        return 0.0
    return float(pairwise_distances(points).max())


def min_pairwise_distance_from_matrix(distances: np.ndarray) -> float:
    """Smallest off-diagonal entry of a distance matrix (0 for n < 2)."""
    n = distances.shape[0]
    if n < 2:
        return 0.0
    return float(distances[~np.eye(n, dtype=bool)].min())


def min_pairwise_distance(points: Sequence[PointLike]) -> float:
    """Smallest separation between distinct points (0 for fewer than two)."""
    if len(points) < 2:
        return 0.0
    return min_pairwise_distance_from_matrix(pairwise_distances(points))
