#!/usr/bin/env python
"""Verify that every relative markdown link in the repo's docs resolves.

Scans the top-level ``*.md`` files and everything under ``docs/`` (plus
any other tracked markdown directories listed in ``SCAN_DIRS``) for
markdown links and images, and checks that each relative target exists
on disk.  External links (``http(s)://``, ``mailto:``) and pure
in-page anchors (``#...``) are skipped; a relative target's ``#anchor``
suffix is stripped before the existence check.

Exit status 0 when every link resolves; 1 otherwise, with one line per
broken link (``file:line: target``).  Run by CI on every push, and by
``tests/test_docs_links.py`` as part of tier-1.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Directories whose markdown files are scanned (beyond the repo root).
SCAN_DIRS = ("docs", "tests")

#: ``[text](target)`` and ``![alt](target)`` — good enough for the plain
#: markdown these docs use (no reference-style links, no titles).
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")


def markdown_files() -> List[Path]:
    """All markdown files the checker covers, repo-root relative order."""
    files = sorted(REPO_ROOT.glob("*.md"))
    for directory in SCAN_DIRS:
        files.extend(sorted((REPO_ROOT / directory).rglob("*.md")))
    return [f for f in files if f.is_file()]


def iter_links(path: Path) -> Iterator[Tuple[int, str]]:
    """Yield (line number, link target) pairs of one markdown file."""
    for line_number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        for match in LINK_PATTERN.finditer(line):
            yield line_number, match.group(1)


def broken_links() -> List[str]:
    """All unresolved relative links, as ``file:line: target`` strings."""
    problems: List[str] = []
    for path in markdown_files():
        for line_number, target in iter_links(path):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}:{line_number}: {target}"
                )
    return problems


def main() -> int:
    problems = broken_links()
    checked = len(markdown_files())
    if problems:
        print(f"broken links in {checked} markdown files:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"all relative links resolve across {checked} markdown files")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
