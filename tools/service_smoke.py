#!/usr/bin/env python
"""CI smoke for the sweep job service: serve, submit, re-submit, dedup.

Starts ``python -m repro serve`` as a real subprocess on a free port
with a temporary store, drives it through the real CLI verbs (the same
path a user's shell takes), and asserts the acceptance loop of the
results store:

1. ``submit --smoke --wait`` completes with every run executed;
2. the same submission again completes with **zero** executed runs —
   100% served from the store;
3. the second job's rows are bit-identical to the first's.

Exits non-zero (with the service's stderr) on any violation.  Run as
``PYTHONPATH=src python tools/service_smoke.py``.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=str(SRC))
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
        cwd=ROOT,
    )


def wait_for_health(port: int, server: subprocess.Popen) -> None:
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if server.poll() is not None:
            raise SystemExit(
                f"serve died on startup (rc={server.returncode}):\n"
                f"{server.stderr.read()}"
            )
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/api/health", timeout=2
            ) as response:
                if json.loads(response.read())["status"] == "ok":
                    return
        except (urllib.error.URLError, OSError):
            time.sleep(0.1)
    raise SystemExit("service never became healthy")


def submit_smoke(port: int) -> dict:
    proc = cli(
        "submit", "--smoke", "--wait", "--json",
        "--port", str(port), "--workers", "2",
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"submit failed (rc={proc.returncode}):\n{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


def fetch_rows(port: int, job_id: str) -> list:
    proc = cli("results", job_id, "--rows", "--json", "--port", str(port))
    if proc.returncode != 0:
        raise SystemExit(f"results failed: {proc.stderr}")
    return json.loads(proc.stdout)["rows"]


def main() -> int:
    port = free_port()
    failures = []
    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as tmp:
        env = dict(os.environ, PYTHONPATH=str(SRC))
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", str(port),
                "--store", str(Path(tmp) / "store.sqlite"),
                "--jobs-dir", str(Path(tmp) / "jobs"),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            cwd=ROOT,
        )
        try:
            wait_for_health(port, server)

            first = submit_smoke(port)
            print(
                f"first job {first['job_id']}: {first['state']}, "
                f"{first['executed']} executed, {first['store_hits']} store hits"
            )
            if first["state"] != "done":
                failures.append(f"first job not done: {first}")
            if first["executed"] != first["total"]:
                failures.append(
                    f"first job should execute everything: {first['executed']}"
                    f"/{first['total']}"
                )

            second = submit_smoke(port)
            print(
                f"second job {second['job_id']}: {second['state']}, "
                f"{second['executed']} executed, {second['store_hits']} store hits"
            )
            if second["state"] != "done":
                failures.append(f"second job not done: {second}")
            if second["executed"] != 0:
                failures.append(
                    f"re-submission executed {second['executed']} runs; "
                    "expected 0 (100% cache hits)"
                )
            if second["store_hits"] != second["total"]:
                failures.append(
                    f"re-submission served {second['store_hits']}"
                    f"/{second['total']} rows from the store; expected all"
                )

            rows_first = fetch_rows(port, first["job_id"])
            rows_second = fetch_rows(port, second["job_id"])
            if rows_first != rows_second:
                failures.append("cached rows differ from the computed rows")
            else:
                print(f"{len(rows_second)} cached rows bit-identical")
        finally:
            server.send_signal(signal.SIGTERM)
            try:
                server.wait(timeout=15)
            except subprocess.TimeoutExpired:
                server.kill()
                server.wait(timeout=15)

    if failures:
        print("\nSERVICE SMOKE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("service smoke passed: second submission was 100% cache hits")
    return 0


if __name__ == "__main__":
    sys.exit(main())
