#!/usr/bin/env python3
"""Fit the sweep cost-model constants from measured JSONL rows.

``RunSpec.cost_hint()`` estimates a run's wall time as ``cost_units() *
COST_HINT_SECONDS[cost_class]``, where the units are activation-robot
work (``max_activations * n``, with an extra factor of ``n`` for the 3D
round engine whose ``max_activations`` bounds rounds).  The per-class
constants live in ``repro.sweeps.spec.COST_HINT_SECONDS`` and are fitted
from real measurements by this tool:

1. run any sweep with ``--out rows.jsonl`` (every row records its
   ``wall_time_s``);
2. ``python tools/calibrate_cost_hint.py rows.jsonl [more.jsonl ...]``.

For each cost class the tool solves the one-parameter least-squares
problem through the origin, ``c = sum(w_i * u_i) / sum(u_i^2)`` over the
measured ``(units, wall_time)`` pairs — the minimiser of
``sum((w_i - c * u_i)^2)`` — and reports the fit quality next to the
constants currently shipped, ready to paste into ``spec.py``.

A run that *converged* stops early, so its measured wall time undershoots
the hint for its nominal ``max_activations``; pass ``--converged-too`` to
include such rows anyway (by default only rows that ran to their horizon
are used, which is what the constant means to model).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sweeps.factories import is_round_discipline3, run_dimension  # noqa: E402
from repro.sweeps.spec import COST_HINT_SECONDS  # noqa: E402


def row_cost_class(row: dict) -> str:
    """The cost class of a result row (mirrors ``RunSpec.cost_class``).

    Rows the replicate-batched executor produced carry a
    ``batched_replicates`` provenance field and bill under
    ``"2d-replicate"`` — the planner's rate for bundled members.
    """
    dimension = run_dimension(
        str(row["algorithm"]),
        str(row["scheduler"]),
        str(row["workload"]),
        str(row.get("error_model", "exact")),
    )
    if dimension == 2:
        if row.get("batched_replicates"):
            return "2d-replicate"
        return "2d"
    return "3d-round" if is_round_discipline3(str(row["scheduler"])) else "3d-async"


def row_cost_units(row: dict) -> float:
    """The cost units of a result row (mirrors ``RunSpec.cost_units``)."""
    units = float(row["max_activations"]) * float(row["n_robots"])
    if row_cost_class(row) == "3d-round":
        units *= float(row["n_robots"])
    return units


def row_wall_seconds(row: dict) -> float:
    """The wall time a row contributes to the fit.

    Bundle lanes run interleaved, so each bundled row's recorded
    ``wall_time_s`` spans nearly the whole bundle; the marginal
    per-member cost — what ``"2d-replicate"`` means to model, since a
    bundle's hint sums its members at that rate — is the recorded time
    divided by the bundle size.
    """
    wall = float(row["wall_time_s"])
    bundled = row.get("batched_replicates")
    if bundled:
        wall /= float(bundled)
    return wall


def load_rows(paths) -> list:
    rows = []
    for path in paths:
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(row, dict) and "wall_time_s" in row:
                    rows.append(row)
    return rows


def fit(rows, *, include_converged: bool) -> dict:
    """Per-class least-squares constants with fit diagnostics."""
    per_class = defaultdict(list)
    for row in rows:
        if not include_converged and row.get("converged"):
            continue
        try:
            per_class[row_cost_class(row)].append(
                (row_cost_units(row), row_wall_seconds(row))
            )
        except (ValueError, KeyError):
            continue
    result = {}
    for klass, pairs in sorted(per_class.items()):
        sum_wu = sum(w * u for u, w in pairs)
        sum_uu = sum(u * u for u, _ in pairs)
        constant = sum_wu / sum_uu if sum_uu > 0 else 0.0
        errors = sorted(
            abs(w - constant * u) / w for u, w in pairs if w > 0
        )
        median_error = errors[len(errors) // 2] if errors else 0.0
        result[klass] = {
            "constant": constant,
            "rows": len(pairs),
            "median_relative_error": median_error,
        }
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("jsonl", nargs="+", help="sweep result files (JSONL rows)")
    parser.add_argument(
        "--converged-too",
        action="store_true",
        help="include rows whose run converged before its activation horizon",
    )
    args = parser.parse_args(argv)

    rows = load_rows(args.jsonl)
    if not rows:
        print("no rows with wall_time_s found", file=sys.stderr)
        return 1
    fitted = fit(rows, include_converged=args.converged_too)
    if not fitted:
        print(
            "no usable rows (all converged early? try --converged-too)",
            file=sys.stderr,
        )
        return 1

    print(f"{len(rows)} rows read; fitted constants (seconds per cost unit):\n")
    print(f"{'class':<10} {'rows':>5} {'fitted':>12} {'shipped':>12} {'median |err|':>13}")
    for klass, info in fitted.items():
        shipped = COST_HINT_SECONDS.get(klass)
        shipped_text = f"{shipped:.3g}" if shipped is not None else "--"
        print(
            f"{klass:<10} {info['rows']:>5} {info['constant']:>12.3g} "
            f"{shipped_text:>12} {info['median_relative_error']:>12.1%}"
        )
    print("\nPaste into src/repro/sweeps/spec.py to update:\n")
    print("COST_HINT_SECONDS = {")
    for klass in ("2d", "2d-replicate", "3d-round", "3d-async"):
        if klass in fitted:
            print(f'    "{klass}": {fitted[klass]["constant"]:.3g},')
        elif klass in COST_HINT_SECONDS:
            print(f'    "{klass}": {COST_HINT_SECONDS[klass]:.3g},  # unchanged (no rows)')
    print("}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
