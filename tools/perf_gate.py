#!/usr/bin/env python3
"""CI perf-regression gate for the engine hot path.

Re-measures the kknps x ssync cell at n=400 — the array-native engine
(round fast path) against the seed-engine replica from
``benchmarks/bench_engine.py`` — under the same conditions the committed
``BENCH_engine.json`` was recorded with, and fails if the fresh speedup
drops below the stored floor (``perf_floor_kknps_ssync_n400``, one
quarter of the recorded headline: generous against CI-runner noise,
fatal against an accidental re-quadratization of the hot path).

When the recorded JSON carries a ``replicates`` section the gate also
re-measures the replicate-batched throughput — a 16-seed kknps x ssync
bundle at n=10^3 through ``run_replicated_simulations`` — and fails if
the fresh runs/sec drop below
``replicates.perf_floor_replicate_runs_per_second``.

When the ``mega`` section records a decide-phase floor
(``mega.perf_floor_decide_activations_per_second``) the gate re-times the
whole-round batched decide phase at the recorded anchor size and fails if
the fresh activations/sec drop below it.  A pointloc micro-bench smoke
runs alongside: the build-once locators must answer a batched membership
query and agree with the scalar predicates (a cheap canary for the
geometry layer the decide path leans on).

Run it directly::

    PYTHONPATH=src python tools/perf_gate.py            # gate against BENCH_engine.json
    PYTHONPATH=src python tools/perf_gate.py --bench other.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_engine import (  # noqa: E402
    FULL_ACTIVATIONS,
    REPLICATE_ACTIVATIONS,
    REPLICATE_N,
    REPLICATE_SEEDS,
    SEED,
    SeedEngineSimulator,
    _config,
    _mega_activations,
    _run_once,
    _run_phased,
)
from repro.algorithms import KKNPSAlgorithm  # noqa: E402
from repro.engine import Simulator  # noqa: E402
from repro.engine.replicate import run_replicated_simulations  # noqa: E402
from repro.schedulers import SSyncScheduler  # noqa: E402
from repro.sweeps.runner import planar_setup  # noqa: E402
from repro.sweeps.spec import RunSpec  # noqa: E402
from repro.workloads import (  # noqa: E402
    random_connected_configuration,
    truncated_grid_configuration,
)

GATE_N = 400


def measure_speedup() -> float:
    """Fresh kknps x ssync speedup at n=400, best of two attempts.

    The best-of guards against one-off scheduler hiccups on shared CI
    runners; the measurement itself mirrors ``run_grid`` exactly.
    """
    positions = list(random_connected_configuration(GATE_N, seed=SEED).positions)
    best = 0.0
    for _ in range(2):
        new_seconds = _run_once(
            Simulator, positions, KKNPSAlgorithm(k=1), SSyncScheduler(),
            _config(FULL_ACTIVATIONS, "array", 1),
        )
        seed_seconds = _run_once(
            SeedEngineSimulator, positions, KKNPSAlgorithm(k=1), SSyncScheduler(),
            _config(FULL_ACTIVATIONS, "object", 1),
        )
        if new_seconds > 0:
            best = max(best, seed_seconds / new_seconds)
    return best


def measure_replicate_throughput() -> float:
    """Fresh batched runs/sec on the recorded replicate cell, best of two.

    Mirrors ``bench_engine.run_replicates``'s batched side exactly — the
    same 16-seed kknps x ssync bundle at n=10^3 — but skips the serial
    side and the bit-identity assertion (a correctness concern the test
    suite owns); the gate only guards throughput.
    """

    def factory_for(seed: int):
        def factory():
            spec = RunSpec(
                algorithm="kknps", scheduler="ssync", workload="grid",
                n_robots=REPLICATE_N, error_model="exact", seed=seed,
                scheduler_k=2, epsilon=0.05,
                max_activations=REPLICATE_ACTIVATIONS,
            )
            configuration, algorithm, scheduler, config = planar_setup(spec)
            return configuration.positions, algorithm, scheduler, config

        return factory

    best = 0.0
    for _ in range(2):
        started = time.perf_counter()
        run_replicated_simulations(
            [factory_for(seed) for seed in range(REPLICATE_SEEDS)],
            fanout_workers=0,
        )
        elapsed = time.perf_counter() - started
        if elapsed > 0:
            best = max(best, REPLICATE_SEEDS / elapsed)
    return best


def measure_decide_throughput(n: int) -> float:
    """Fresh decide-phase activations/sec at the recorded mega anchor size.

    Mirrors ``bench_engine.run_mega``'s instrumented run exactly — same
    workload, same activation budget, same phase brackets — and reduces
    it to the decide phase's throughput.
    """
    activations = _mega_activations(n, False)
    positions = list(truncated_grid_configuration(n, spacing=0.7).positions)
    phases = _run_phased(
        positions, KKNPSAlgorithm(k=1), SSyncScheduler(),
        _config(activations, "array", 1),
    )
    decide_seconds = phases["decide"]
    return activations / decide_seconds if decide_seconds > 0 else float("inf")


def pointloc_smoke(queries: int = 4096, disks_count: int = 6) -> bool:
    """Micro-bench smoke for the build-once locators.

    Times one batched intersection + union query and cross-checks every
    verdict against the scalar ``Disk.contains`` loops.  Catches both a
    broken import and a certificate-soundness regression before the
    engine-level gates would surface it as a bit-identity failure.
    """
    import numpy as np

    from repro.geometry.disk import Disk
    from repro.geometry.point import Point
    from repro.geometry.pointloc import DiskIntersectionLocator, DiskUnionLocator

    rng = np.random.default_rng(SEED)
    disks = [
        Disk(Point(float(x), float(y)), float(r))
        for x, y, r in zip(
            rng.normal(size=disks_count),
            rng.normal(size=disks_count),
            rng.uniform(0.5, 2.0, size=disks_count),
        )
    ]
    px = rng.normal(size=queries) * 2.0
    py = rng.normal(size=queries) * 2.0
    started = time.perf_counter()
    inter = DiskIntersectionLocator(disks).contains_array(px, py)
    union = DiskUnionLocator(disks).contains_array(px, py)
    elapsed = time.perf_counter() - started
    ref_inter = np.array(
        [all(d.contains(Point(float(x), float(y))) for d in disks) for x, y in zip(px, py)]
    )
    ref_union = np.array(
        [any(d.contains(Point(float(x), float(y))) for d in disks) for x, y in zip(px, py)]
    )
    ok = bool((inter == ref_inter).all() and (union == ref_union).all())
    print(
        f"pointloc micro-bench: {queries} queries x {disks_count} disks in "
        f"{elapsed * 1e3:.2f} ms, verdicts {'match' if ok else 'MISMATCH'}"
    )
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench",
        type=Path,
        default=REPO_ROOT / "BENCH_engine.json",
        help="recorded bench JSON holding the stored floor",
    )
    args = parser.parse_args(argv)

    recorded = json.loads(args.bench.read_text())
    floor = recorded.get("perf_floor_kknps_ssync_n400")
    if floor is None:
        print(f"{args.bench} has no perf_floor_kknps_ssync_n400; nothing to gate")
        return 1
    headline = recorded.get("headline_speedup_kknps_ssync_n400")

    measured = measure_speedup()
    print(
        f"kknps x ssync n={GATE_N}: measured {measured:.2f}x, "
        f"recorded {headline}x, floor {floor}x"
    )
    if measured < floor:
        print(
            f"PERF GATE FAILED: fresh speedup {measured:.2f}x is below the "
            f"stored floor {floor}x — the engine hot path regressed "
            "(or BENCH_engine.json needs regenerating after an intended change)."
        )
        return 1

    replicates = recorded.get("replicates") or {}
    replicate_floor = replicates.get("perf_floor_replicate_runs_per_second")
    if replicate_floor is not None:
        throughput = measure_replicate_throughput()
        print(
            f"replicate batching n={REPLICATE_N} x {REPLICATE_SEEDS} seeds: "
            f"measured {throughput:.1f} runs/s, "
            f"recorded {replicates.get('runs_per_second_batched')} runs/s, "
            f"floor {replicate_floor} runs/s"
        )
        if throughput < replicate_floor:
            print(
                f"PERF GATE FAILED: batched replicate throughput "
                f"{throughput:.1f} runs/s is below the stored floor "
                f"{replicate_floor} runs/s — the replicate-batched path "
                "regressed (or BENCH_engine.json needs regenerating after "
                "an intended change)."
            )
            return 1
    else:
        print("no replicate floor recorded; skipping the replicate gate")

    mega = recorded.get("mega") or {}
    decide_floor = mega.get("perf_floor_decide_activations_per_second")
    anchor_n = mega.get("decide_floor_n")
    if decide_floor is not None and anchor_n:
        throughput = measure_decide_throughput(int(anchor_n))
        print(
            f"batched decide n={anchor_n}: measured {throughput:.0f} "
            f"activations/s, floor {decide_floor} activations/s"
        )
        if throughput < decide_floor:
            print(
                f"PERF GATE FAILED: decide-phase throughput {throughput:.0f} "
                f"activations/s is below the stored floor {decide_floor} — "
                "the whole-round batched decide regressed (or "
                "BENCH_engine.json needs regenerating after an intended "
                "change)."
            )
            return 1
    else:
        print("no decide-phase floor recorded; skipping the decide gate")

    if not pointloc_smoke():
        print(
            "PERF GATE FAILED: pointloc locator verdicts diverged from the "
            "scalar containment loops."
        )
        return 1

    print("perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
