#!/usr/bin/env python3
"""CI perf-regression gate for the engine hot path.

Re-measures the kknps x ssync cell at n=400 — the array-native engine
(round fast path) against the seed-engine replica from
``benchmarks/bench_engine.py`` — under the same conditions the committed
``BENCH_engine.json`` was recorded with, and fails if the fresh speedup
drops below the stored floor (``perf_floor_kknps_ssync_n400``, one
quarter of the recorded headline: generous against CI-runner noise,
fatal against an accidental re-quadratization of the hot path).

Run it directly::

    PYTHONPATH=src python tools/perf_gate.py            # gate against BENCH_engine.json
    PYTHONPATH=src python tools/perf_gate.py --bench other.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_engine import (  # noqa: E402
    FULL_ACTIVATIONS,
    SEED,
    SeedEngineSimulator,
    _config,
    _run_once,
)
from repro.algorithms import KKNPSAlgorithm  # noqa: E402
from repro.engine import Simulator  # noqa: E402
from repro.schedulers import SSyncScheduler  # noqa: E402
from repro.workloads import random_connected_configuration  # noqa: E402

GATE_N = 400


def measure_speedup() -> float:
    """Fresh kknps x ssync speedup at n=400, best of two attempts.

    The best-of guards against one-off scheduler hiccups on shared CI
    runners; the measurement itself mirrors ``run_grid`` exactly.
    """
    positions = list(random_connected_configuration(GATE_N, seed=SEED).positions)
    best = 0.0
    for _ in range(2):
        new_seconds = _run_once(
            Simulator, positions, KKNPSAlgorithm(k=1), SSyncScheduler(),
            _config(FULL_ACTIVATIONS, "array", 1),
        )
        seed_seconds = _run_once(
            SeedEngineSimulator, positions, KKNPSAlgorithm(k=1), SSyncScheduler(),
            _config(FULL_ACTIVATIONS, "object", 1),
        )
        if new_seconds > 0:
            best = max(best, seed_seconds / new_seconds)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench",
        type=Path,
        default=REPO_ROOT / "BENCH_engine.json",
        help="recorded bench JSON holding the stored floor",
    )
    args = parser.parse_args(argv)

    recorded = json.loads(args.bench.read_text())
    floor = recorded.get("perf_floor_kknps_ssync_n400")
    if floor is None:
        print(f"{args.bench} has no perf_floor_kknps_ssync_n400; nothing to gate")
        return 1
    headline = recorded.get("headline_speedup_kknps_ssync_n400")

    measured = measure_speedup()
    print(
        f"kknps x ssync n={GATE_N}: measured {measured:.2f}x, "
        f"recorded {headline}x, floor {floor}x"
    )
    if measured < floor:
        print(
            f"PERF GATE FAILED: fresh speedup {measured:.2f}x is below the "
            f"stored floor {floor}x — the engine hot path regressed "
            "(or BENCH_engine.json needs regenerating after an intended change)."
        )
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
