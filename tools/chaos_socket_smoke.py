"""Chaos smoke: kill one socket worker mid-sweep and demand a perfect sweep.

The CI companion of the socket backend's fault-tolerance contract.  It
runs the standard ``--smoke`` grid (16 tiny runs) on the socket backend
with two workers, SIGKILLs exactly one worker while it is mid-chunk (the
worker kills *itself* when it reaches a designated run, so the kill is
deterministic and always lands inside a lease), and then asserts:

* the sweep completes with every row present,
* the rows are bit-identical to serial execution (timing fields aside),
* the backend summary reports ``worker_losses=1`` and at least one
  requeued chunk.

Exits non-zero on any violation.  The backend summary is printed on
stdout — the ``worker_losses=1`` line the CI step greps for.

Run it directly::

    PYTHONPATH=src python tools/chaos_socket_smoke.py
"""

from __future__ import annotations

import os
import signal
import sys
import tempfile
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.sweeps.backends.socket_backend import SocketBackend  # noqa: E402
from repro.sweeps.cli import smoke_spec  # noqa: E402
from repro.sweeps.runner import execute_run, strip_timing  # noqa: E402


def kill_once_run_fn(spec):
    """Execute the real run, but SIGKILL this worker the first time the
    designated run is reached (the marker file records that the kill
    already fired, so the requeued chunk re-executes normally)."""
    marker = os.environ["REPRO_CHAOS_KILL_MARKER"]
    if spec.run_key == os.environ["REPRO_CHAOS_KILL_KEY"] and not os.path.exists(
        marker
    ):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)
    return execute_run(spec)


def main() -> int:
    specs = smoke_spec().expand()
    # Designate the head of the LPT order: it is leased first, while
    # plenty of chunks remain for the surviving worker.
    ordered = sorted(specs, key=lambda s: (-s.cost_hint(), s.run_key))
    os.environ["REPRO_CHAOS_KILL_KEY"] = ordered[0].run_key
    marker = Path(tempfile.mkdtemp(prefix="chaos-socket-")) / "killed"
    os.environ["REPRO_CHAOS_KILL_MARKER"] = str(marker)

    backend = SocketBackend(workers=2, run_fn=kill_once_run_fn, token="chaos-smoke")
    rows = dict(backend.execute(specs))
    stats = backend.stats()
    print(stats.summary(), flush=True)

    failures = []
    if not marker.exists():
        failures.append("the chaos kill never fired")
    if len(rows) != len(specs):
        failures.append(f"rows lost: {len(rows)}/{len(specs)}")
    serial = {spec.run_key: strip_timing(execute_run(spec)) for spec in specs}
    surviving = {key: strip_timing(row) for key, row in rows.items()}
    if surviving != serial:
        failures.append("rows differ from serial execution")
    if stats.worker_losses != 1:
        failures.append(f"worker_losses={stats.worker_losses}, expected 1")
    if stats.requeued_chunks < 1:
        failures.append("no chunk was requeued despite the mid-chunk kill")
    if sum(1 for w in stats.worker_health if w.lost) != 1:
        failures.append("exactly one worker should carry the lost flag")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(
        f"chaos smoke OK: {len(rows)} rows bit-identical to serial after "
        "killing one worker mid-chunk"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
