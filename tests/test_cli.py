"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main, make_algorithm, make_scheduler, make_workload
from repro.algorithms import (
    AndoAlgorithm,
    CenterOfGravityAlgorithm,
    KKNPSAlgorithm,
    KatreniakAlgorithm,
    MinboxAlgorithm,
)
from repro.schedulers import (
    AsyncScheduler,
    FSyncScheduler,
    KAsyncScheduler,
    KNestAScheduler,
    SSyncScheduler,
)


class TestFactories:
    def test_algorithm_factory(self):
        parser = build_parser()
        cases = {
            "kknps": KKNPSAlgorithm,
            "ando": AndoAlgorithm,
            "katreniak": KatreniakAlgorithm,
            "cog": CenterOfGravityAlgorithm,
            "gcm": MinboxAlgorithm,
        }
        for name, expected in cases.items():
            args = parser.parse_args(["--algorithm", name])
            assert isinstance(make_algorithm(args), expected)

    def test_kknps_picks_up_error_tolerances(self):
        args = build_parser().parse_args(
            ["--algorithm", "kknps", "--k", "3", "--distance-error", "0.05", "--skew", "0.1"]
        )
        algorithm = make_algorithm(args)
        assert algorithm.k == 3
        assert algorithm.distance_error_tolerance == pytest.approx(0.05)
        assert algorithm.skew_tolerance == pytest.approx(0.1)

    def test_scheduler_factory(self):
        parser = build_parser()
        cases = {
            "fsync": FSyncScheduler,
            "ssync": SSyncScheduler,
            "k-nesta": KNestAScheduler,
            "k-async": KAsyncScheduler,
            "async": AsyncScheduler,
        }
        for name, expected in cases.items():
            args = parser.parse_args(["--scheduler", name])
            assert isinstance(make_scheduler(args), expected)

    def test_workload_factory(self):
        parser = build_parser()
        for name in ("random", "line", "grid", "ring", "clusters"):
            args = parser.parse_args(["--workload", name, "--robots", "9"])
            configuration = make_workload(args)
            assert len(configuration) >= 3
            assert configuration.is_connected()


class TestMain:
    def test_successful_run_returns_zero(self, capsys):
        code = main(
            ["--robots", "6", "--k", "1", "--scheduler", "ssync",
             "--max-activations", "4000", "--epsilon", "0.05", "--trace"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "converged" in output
        assert "hull-diameter trace" in output

    def test_svg_output(self, tmp_path, capsys):
        target = tmp_path / "run.svg"
        code = main(
            ["--robots", "5", "--scheduler", "fsync", "--max-activations", "2000",
             "--svg", str(target)]
        )
        assert code == 0
        assert target.exists()
        assert target.read_text().startswith("<svg")

    def test_non_converged_run_returns_one(self):
        # One activation cannot converge a spread-out swarm.
        code = main(["--robots", "8", "--max-activations", "1", "--epsilon", "0.001"])
        assert code == 1
