"""Tests for the trajectory recorder."""

import io
import json

import pytest

from repro.engine import TrajectoryRecorder
from repro.geometry import Point


class TestTrajectoryRecorder:
    def test_record_and_query(self):
        recorder = TrajectoryRecorder()
        recorder.record(0, 0.0, (0, 0))
        recorder.record(0, 2.0, (2, 0))
        assert recorder.robot_ids() == [0]
        assert recorder.path_length(0) == pytest.approx(2.0)
        assert recorder.trajectory(0)[0] == (0.0, Point(0, 0))

    def test_record_all(self):
        recorder = TrajectoryRecorder()
        recorder.record_all(1.0, [(0, 0), (1, 1)])
        assert recorder.robot_ids() == [0, 1]

    def test_interpolated_position(self):
        recorder = TrajectoryRecorder()
        recorder.record(0, 0.0, (0, 0))
        recorder.record(0, 2.0, (2, 0))
        assert recorder.position_at(0, 1.0) == Point(1.0, 0.0)
        assert recorder.position_at(0, -1.0) == Point(0.0, 0.0)
        assert recorder.position_at(0, 5.0) == Point(2.0, 0.0)
        assert recorder.position_at(7, 1.0) is None

    def test_zero_duration_breakpoints(self):
        recorder = TrajectoryRecorder()
        recorder.record(0, 1.0, (0, 0))
        recorder.record(0, 1.0, (3, 0))
        assert recorder.position_at(0, 1.0) == Point(3.0, 0.0)

    def test_json_round_trip(self):
        recorder = TrajectoryRecorder()
        recorder.record(0, 0.0, (0, 0))
        recorder.record(0, 1.0, (1, 2))
        recorder.record(3, 0.5, (5, 5))
        stream = io.StringIO()
        recorder.dump_json(stream)
        data = json.loads(stream.getvalue())
        restored = TrajectoryRecorder.from_dict(data)
        assert restored.robot_ids() == [0, 3]
        assert restored.position_at(0, 1.0) == Point(1.0, 2.0)
        assert restored.path_length(0) == pytest.approx(recorder.path_length(0))
