"""Cross-run determinism regression tests.

The parallel sweep engine is only sound because a simulation run is a pure
function of its configuration and seed: the same ``Simulator`` inputs must
yield *bit-identical* outputs no matter when (or in which process) they
execute.  These tests pin that property for the final positions, the full
metrics history and the activation records — including under random
perception/motion error, where determinism rests entirely on the seeded
RNG stream.
"""

from __future__ import annotations

import pytest

from repro.algorithms import AndoAlgorithm, KKNPSAlgorithm
from repro.engine import SimulationConfig, run_simulation
from repro.geometry.transforms import SymmetricDistortion
from repro.model import MotionModel, PerceptionModel
from repro.schedulers import KAsyncScheduler, KNestAScheduler, SSyncScheduler
from repro.workloads import blob_configuration, random_connected_configuration


def _run(algorithm, scheduler, *, seed: int, config_kwargs=None):
    configuration = random_connected_configuration(8, seed=seed)
    config = SimulationConfig(
        seed=seed, max_activations=400, convergence_epsilon=0.05, k_bound=2,
        **(config_kwargs or {}),
    )
    return run_simulation(configuration.positions, algorithm, scheduler, config)


def _assert_identical(first, second) -> None:
    """Bit-identical outcomes: positions, metric samples, activation records."""
    assert tuple(first.final_configuration.positions) == tuple(
        second.final_configuration.positions
    )
    assert first.metrics.samples == second.metrics.samples
    assert first.activation_counts == second.activation_counts
    assert first.activation_end_times == second.activation_end_times
    assert first.converged == second.converged
    assert first.convergence_time == second.convergence_time
    assert first.final_time == second.final_time
    assert len(first.records) == len(second.records)
    for a, b in zip(first.records, second.records):
        assert a.activation == b.activation
        assert a.origin == b.origin
        assert a.target == b.target
        assert a.destination == b.destination
        assert a.neighbours_seen == b.neighbours_seen
        assert a.moved_distance == b.moved_distance


class TestSimulatorDeterminism:
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_kknps_under_kasync_is_bit_identical(self, seed):
        first = _run(KKNPSAlgorithm(k=2), KAsyncScheduler(k=2), seed=seed)
        second = _run(KKNPSAlgorithm(k=2), KAsyncScheduler(k=2), seed=seed)
        _assert_identical(first, second)

    def test_ando_under_ssync_is_bit_identical(self):
        first = _run(AndoAlgorithm(), SSyncScheduler(), seed=5)
        second = _run(AndoAlgorithm(), SSyncScheduler(), seed=5)
        _assert_identical(first, second)

    def test_noisy_run_is_bit_identical(self):
        """Random perception and non-rigid motion still replay exactly by seed."""
        noisy = dict(
            perception=PerceptionModel(
                distance_error=0.05,
                distortion=SymmetricDistortion(amplitude=0.1, frequency=2),
            ),
            motion=MotionModel(xi=0.5, deviation="quadratic", coefficient=0.2),
        )
        first = _run(
            KKNPSAlgorithm(k=2, distance_error_tolerance=0.05, skew_tolerance=0.1),
            KNestAScheduler(k=2),
            seed=11,
            config_kwargs=noisy,
        )
        second = _run(
            KKNPSAlgorithm(k=2, distance_error_tolerance=0.05, skew_tolerance=0.1),
            KNestAScheduler(k=2),
            seed=11,
            config_kwargs=noisy,
        )
        _assert_identical(first, second)

    def test_different_seeds_actually_differ(self):
        """The regression above is not vacuous: seeds do change the outcome."""
        first = _run(KKNPSAlgorithm(k=2), KAsyncScheduler(k=2), seed=0)
        second = _run(KKNPSAlgorithm(k=2), KAsyncScheduler(k=2), seed=1)
        assert tuple(first.final_configuration.positions) != tuple(
            second.final_configuration.positions
        )

    def test_workload_generation_is_deterministic(self):
        first = blob_configuration(12, seed=9)
        second = blob_configuration(12, seed=9)
        assert tuple(first.positions) == tuple(second.positions)
