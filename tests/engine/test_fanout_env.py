"""The replicate fan-out crossover threshold honours its env override."""

from __future__ import annotations

import importlib

import pytest

from repro.engine import fanout


class TestFanoutThresholdOverride:
    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLICATE_FANOUT_MIN_ROBOTS", raising=False)
        assert fanout._fanout_min_robots_default() == 100_000

    @pytest.mark.parametrize("raw,expected", [
        ("5000", 5_000),
        ("1", 1),
        ("250000", 250_000),
    ])
    def test_valid_override(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_REPLICATE_FANOUT_MIN_ROBOTS", raw)
        assert fanout._fanout_min_robots_default() == expected

    @pytest.mark.parametrize("raw", ["", "abc", "12.5", "0", "-3"])
    def test_invalid_or_non_positive_falls_back(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_REPLICATE_FANOUT_MIN_ROBOTS", raw)
        assert fanout._fanout_min_robots_default() == 100_000

    def test_module_constant_reflects_env_at_import(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLICATE_FANOUT_MIN_ROBOTS", "777")
        try:
            importlib.reload(fanout)
            assert fanout.REPLICATE_FANOUT_MIN_ROBOTS == 777
        finally:
            monkeypatch.delenv("REPRO_REPLICATE_FANOUT_MIN_ROBOTS")
            importlib.reload(fanout)
        assert fanout.REPLICATE_FANOUT_MIN_ROBOTS == 100_000
