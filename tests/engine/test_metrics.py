"""Tests for the metrics collector."""

import pytest

from repro.engine import MetricsCollector
from repro.geometry import Point


SQUARE = [Point(0, 0), Point(0.9, 0), Point(0.9, 0.9), Point(0, 0.9)]


class TestMetricsCollector:
    def test_observe_builds_samples(self):
        collector = MetricsCollector(visibility_range=1.0)
        collector.bind_initial(SQUARE)
        sample = collector.observe(0.0, SQUARE, 0)
        assert sample.hull_diameter == pytest.approx(0.9 * 2 ** 0.5)
        assert sample.hull_perimeter == pytest.approx(3.6)
        assert sample.min_pairwise_distance == pytest.approx(0.9)
        assert sample.initial_edges_preserved
        assert sample.broken_edge_count == 0
        assert collector.latest() is sample

    def test_cohesion_violation_is_sticky(self):
        collector = MetricsCollector(visibility_range=1.0)
        collector.bind_initial(SQUARE)
        moved = list(SQUARE)
        moved[0] = Point(-5, 0)
        collector.observe(1.0, moved, 1)
        assert collector.cohesion_ever_violated
        # Coming back does not clear the flag.
        collector.observe(2.0, SQUARE, 2)
        assert collector.cohesion_ever_violated
        assert collector.samples[-1].initial_edges_preserved

    def test_first_time_below(self):
        collector = MetricsCollector(visibility_range=1.0)
        collector.bind_initial(SQUARE)
        collector.observe(0.0, SQUARE, 0)
        shrunk = [Point(p.x * 0.01, p.y * 0.01) for p in SQUARE]
        collector.observe(5.0, shrunk, 1)
        assert collector.first_time_below(0.1) == 5.0
        assert collector.first_time_below(1e-9) is None

    def test_monotonicity_helpers(self):
        collector = MetricsCollector(visibility_range=1.0)
        collector.bind_initial(SQUARE)
        collector.observe(0.0, SQUARE, 0)
        collector.observe(1.0, [p * 0.5 for p in SQUARE], 1)
        collector.observe(2.0, [p * 0.25 for p in SQUARE], 2)
        assert collector.monotone_hull_diameter()
        assert collector.monotone_hull_perimeter()
        collector.observe(3.0, [p * 2.0 for p in SQUARE], 3)
        assert not collector.monotone_hull_diameter()

    def test_single_robot_metrics(self):
        collector = MetricsCollector(visibility_range=1.0)
        collector.bind_initial([Point(0, 0)])
        sample = collector.observe(0.0, [Point(0, 0)], 0)
        assert sample.hull_diameter == 0.0
        assert sample.min_pairwise_distance == 0.0

    def test_converged_predicate(self):
        collector = MetricsCollector(visibility_range=1.0)
        collector.bind_initial(SQUARE)
        sample = collector.observe(0.0, SQUARE, 0)
        assert not sample.converged(0.1)
        assert sample.converged(10.0)
