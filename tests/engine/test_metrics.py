"""Tests for the metrics collector."""

import pytest

from repro.engine import MetricsCollector
from repro.geometry import Point


SQUARE = [Point(0, 0), Point(0.9, 0), Point(0.9, 0.9), Point(0, 0.9)]


class TestMetricsCollector:
    def test_observe_builds_samples(self):
        collector = MetricsCollector(visibility_range=1.0)
        collector.bind_initial(SQUARE)
        sample = collector.observe(0.0, SQUARE, 0)
        assert sample.hull_diameter == pytest.approx(0.9 * 2 ** 0.5)
        assert sample.hull_perimeter == pytest.approx(3.6)
        assert sample.min_pairwise_distance == pytest.approx(0.9)
        assert sample.initial_edges_preserved
        assert sample.broken_edge_count == 0
        assert collector.latest() is sample

    def test_cohesion_violation_is_sticky(self):
        collector = MetricsCollector(visibility_range=1.0)
        collector.bind_initial(SQUARE)
        moved = list(SQUARE)
        moved[0] = Point(-5, 0)
        collector.observe(1.0, moved, 1)
        assert collector.cohesion_ever_violated
        # Coming back does not clear the flag.
        collector.observe(2.0, SQUARE, 2)
        assert collector.cohesion_ever_violated
        assert collector.samples[-1].initial_edges_preserved

    def test_first_time_below(self):
        collector = MetricsCollector(visibility_range=1.0)
        collector.bind_initial(SQUARE)
        collector.observe(0.0, SQUARE, 0)
        shrunk = [Point(p.x * 0.01, p.y * 0.01) for p in SQUARE]
        collector.observe(5.0, shrunk, 1)
        assert collector.first_time_below(0.1) == 5.0
        assert collector.first_time_below(1e-9) is None

    def test_monotonicity_helpers(self):
        collector = MetricsCollector(visibility_range=1.0)
        collector.bind_initial(SQUARE)
        collector.observe(0.0, SQUARE, 0)
        collector.observe(1.0, [p * 0.5 for p in SQUARE], 1)
        collector.observe(2.0, [p * 0.25 for p in SQUARE], 2)
        assert collector.monotone_hull_diameter()
        assert collector.monotone_hull_perimeter()
        collector.observe(3.0, [p * 2.0 for p in SQUARE], 3)
        assert not collector.monotone_hull_diameter()

    def test_single_robot_metrics(self):
        collector = MetricsCollector(visibility_range=1.0)
        collector.bind_initial([Point(0, 0)])
        sample = collector.observe(0.0, [Point(0, 0)], 0)
        assert sample.hull_diameter == 0.0
        assert sample.min_pairwise_distance == 0.0

    def test_converged_predicate(self):
        collector = MetricsCollector(visibility_range=1.0)
        collector.bind_initial(SQUARE)
        sample = collector.observe(0.0, SQUARE, 0)
        assert not sample.converged(0.1)
        assert sample.converged(10.0)


class TestLargeNMode:
    """Past METRICS_DENSE_MAX the collector switches to hull-pair diameter
    and grid-local pairs; the threshold is monkeypatched low so the suite
    can pin the two modes bit-identical on the same configurations."""

    def _positions(self, seed, n=60):
        import numpy as np

        rng = np.random.default_rng(seed)
        arr = rng.uniform(-3.0, 3.0, size=(n, 2))
        # Stretch one axis so some initial edges break after a shuffle.
        return arr

    @pytest.mark.parametrize("seed", range(3))
    def test_large_n_observe_matches_dense(self, seed, monkeypatch):
        import numpy as np

        arr = self._positions(seed)
        moved = arr * 1.1

        dense = MetricsCollector(visibility_range=1.5)
        dense.bind_initial(arr)
        dense_sample = dense.observe(1.0, moved, 1)

        monkeypatch.setattr("repro.engine.metrics.METRICS_DENSE_MAX", 16)
        large = MetricsCollector(visibility_range=1.5)
        large.bind_initial(arr)
        large_sample = large.observe(1.0, moved, 1)

        assert large_sample == dense_sample  # frozen dataclass: all floats
        assert large.cohesion_ever_violated == dense.cohesion_ever_violated
        # The large-n bind keeps only the index arrays, sorted like the
        # dense edge set.
        assert large.initial_edges == set()
        index = np.stack((large._edge_i, large._edge_j), axis=1)
        assert sorted(map(tuple, index.tolist())) == sorted(dense.initial_edges)

    @pytest.mark.parametrize("seed", range(3))
    def test_large_n_observe_matches_dense_3d(self, seed, monkeypatch):
        import numpy as np

        from repro.spatial3d.kernel3 import Metrics3Collector

        rng = np.random.default_rng(seed)
        arr = rng.uniform(-2.0, 2.0, size=(50, 3))
        moved = arr * 1.1

        dense = Metrics3Collector(visibility_range=1.5)
        dense.bind_initial(arr)
        dense_sample = dense.observe(1.0, moved, 1)

        monkeypatch.setattr("repro.spatial3d.kernel3.METRICS_DENSE_MAX", 16)
        large = Metrics3Collector(visibility_range=1.5)
        large.bind_initial(arr)
        large_sample = large.observe(1.0, moved, 1)

        assert large_sample == dense_sample
        assert large.initial_edges == set()
        assert sorted(map(tuple, large._edge_index.tolist())) == sorted(
            dense.initial_edges
        )
