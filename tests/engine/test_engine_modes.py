"""The array engine and the retained object engine are interchangeable.

The array path must not merely approximate the seed semantics — every
per-activation quantity (snapshot, destination, realised move, metrics
sample, RNG consumption) must be *bit-identical* between the two modes,
including under random frames, random perception error and non-rigid
motion, where the equality proves both paths consume the seeded RNG
stream in exactly the same order.
"""

from __future__ import annotations

import pytest

from repro.algorithms import AndoAlgorithm, KKNPSAlgorithm
from repro.engine import SimulationConfig, run_simulation
from repro.geometry.transforms import SymmetricDistortion
from repro.model import MotionModel, PerceptionModel
from repro.schedulers import FSyncScheduler, KAsyncScheduler, SSyncScheduler
from repro.workloads import random_connected_configuration


def _run(mode, algorithm, scheduler, *, n=24, seed=3, **config_kwargs):
    configuration = random_connected_configuration(n, seed=seed)
    config = SimulationConfig(
        seed=seed,
        max_activations=300,
        stop_at_convergence=False,
        engine_mode=mode,
        **config_kwargs,
    )
    return run_simulation(configuration.positions, algorithm, scheduler, config)


def _assert_identical(first, second) -> None:
    assert tuple(first.final_configuration.positions) == tuple(
        second.final_configuration.positions
    )
    assert first.metrics.samples == second.metrics.samples
    assert first.activation_counts == second.activation_counts
    assert first.activation_end_times == second.activation_end_times
    assert first.converged == second.converged
    assert first.convergence_time == second.convergence_time
    assert first.final_time == second.final_time
    assert len(first.records) == len(second.records)
    for a, b in zip(first.records, second.records):
        assert a.activation == b.activation
        assert a.origin == b.origin
        assert a.target == b.target
        assert a.destination == b.destination
        assert a.neighbours_seen == b.neighbours_seen
        assert a.moved_distance == b.moved_distance


class TestEngineModeEquivalence:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(engine_mode="hybrid")

    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_kknps_ssync_exact(self, seed):
        _assert_identical(
            _run("array", KKNPSAlgorithm(k=1), SSyncScheduler(), seed=seed,
                 use_random_frames=False),
            _run("object", KKNPSAlgorithm(k=1), SSyncScheduler(), seed=seed,
                 use_random_frames=False),
        )

    def test_kknps_with_random_frames(self):
        _assert_identical(
            _run("array", KKNPSAlgorithm(k=1), SSyncScheduler()),
            _run("object", KKNPSAlgorithm(k=1), SSyncScheduler()),
        )

    def test_kknps_kasync_noisy(self):
        noisy = dict(
            k_bound=2,
            perception=PerceptionModel(
                distance_error=0.05,
                distortion=SymmetricDistortion(amplitude=0.1, frequency=2),
            ),
            motion=MotionModel(xi=0.5, deviation="quadratic", coefficient=0.2),
        )
        algorithm = lambda: KKNPSAlgorithm(
            k=2, distance_error_tolerance=0.05, skew_tolerance=0.1
        )
        _assert_identical(
            _run("array", algorithm(), KAsyncScheduler(k=2), **noisy),
            _run("object", algorithm(), KAsyncScheduler(k=2), **noisy),
        )

    def test_ando_fsync(self):
        _assert_identical(
            _run("array", AndoAlgorithm(), FSyncScheduler()),
            _run("object", AndoAlgorithm(), FSyncScheduler()),
        )

    def test_with_crashes_and_trajectories(self):
        kwargs = dict(crashed_robots=(0, 5), record_trajectories=True, record_every=3)
        first = _run("array", KKNPSAlgorithm(k=1), SSyncScheduler(), **kwargs)
        second = _run("object", KKNPSAlgorithm(k=1), SSyncScheduler(), **kwargs)
        _assert_identical(first, second)
        assert first.trajectories.to_dict() == second.trajectories.to_dict()

    def test_with_multiplicity_detection(self):
        kwargs = dict(multiplicity_detection=True)
        _assert_identical(
            _run("array", KKNPSAlgorithm(k=1), SSyncScheduler(), **kwargs),
            _run("object", KKNPSAlgorithm(k=1), SSyncScheduler(), **kwargs),
        )

    def test_zero_duration_moves(self):
        """A move that completes at the look instant itself.

        The metrics sample of that activation must show the observer at
        its realised destination, so the dense path cannot reuse the
        Look-time interpolation taken before the move began (regression:
        the array path sampled the pre-move position).
        """
        from repro.geometry import Point
        from repro.model import Activation
        from repro.schedulers import ScriptedScheduler

        positions = [Point(0.0, 0.0), Point(0.8, 0.0), Point(1.6, 0.0)]
        script = [
            Activation(robot_id=0, look_time=0.0, compute_duration=0.0, move_duration=0.0),
            Activation(robot_id=2, look_time=0.5, compute_duration=0.0, move_duration=0.0),
            Activation(robot_id=1, look_time=1.0, compute_duration=0.0, move_duration=0.5),
        ]
        results = []
        for mode in ("array", "object"):
            config = SimulationConfig(
                max_activations=3,
                stop_at_convergence=False,
                use_random_frames=False,
                engine_mode=mode,
            )
            results.append(
                run_simulation(
                    positions, KKNPSAlgorithm(k=1), ScriptedScheduler(list(script)), config
                )
            )
        _assert_identical(results[0], results[1])
