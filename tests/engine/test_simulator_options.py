"""Additional simulator-option coverage: frames, range reveal, multiplicity, k-NestA."""

import pytest

from repro.algorithms import AndoAlgorithm, KKNPSAlgorithm
from repro.algorithms.base import ConvergenceAlgorithm
from repro.engine import SimulationConfig, run_simulation
from repro.geometry import Point
from repro.model import Snapshot
from repro.schedulers import FSyncScheduler, KNestAScheduler
from repro.workloads import line_configuration, random_connected_configuration


class SnapshotProbe(ConvergenceAlgorithm):
    """A probe algorithm that records the snapshots it receives and never moves."""

    name = "probe"

    def __init__(self, *, requires_range: bool = False) -> None:
        self.requires_visibility_range = requires_range
        self.snapshots = []

    def compute(self, snapshot: Snapshot) -> Point:
        self.snapshots.append(snapshot)
        return Point.origin()


class TestSnapshotDelivery:
    def _run_probe(self, probe, **config_kwargs):
        configuration = line_configuration(3, spacing=0.5)
        run_simulation(
            configuration.positions,
            probe,
            FSyncScheduler(),
            SimulationConfig(
                max_activations=6, convergence_epsilon=1e-9, stop_at_convergence=False,
                **config_kwargs,
            ),
        )
        return probe.snapshots

    def test_range_hidden_by_default(self):
        snapshots = self._run_probe(SnapshotProbe())
        assert snapshots
        assert all(s.visibility_range is None for s in snapshots)

    def test_range_revealed_when_algorithm_requires_it(self):
        snapshots = self._run_probe(SnapshotProbe(requires_range=True))
        assert all(s.visibility_range == 1.0 for s in snapshots)

    def test_range_reveal_can_be_forced(self):
        snapshots = self._run_probe(SnapshotProbe(), reveal_visibility_range=True)
        assert all(s.visibility_range == 1.0 for s in snapshots)

    def test_k_bound_is_passed_through(self):
        snapshots = self._run_probe(SnapshotProbe(), k_bound=5)
        assert all(s.k_bound == 5 for s in snapshots)

    def test_multiplicity_detection_flag(self):
        positions = [Point(0, 0), Point(0.5, 0), Point(0.5, 0)]
        probe = SnapshotProbe()
        run_simulation(
            positions,
            probe,
            FSyncScheduler(),
            SimulationConfig(
                max_activations=3, convergence_epsilon=1e-9, stop_at_convergence=False,
                multiplicity_detection=True,
            ),
        )
        first = [s for s in probe.snapshots if s.robot_id == 0][0]
        assert first.multiplicities is not None
        assert sorted(first.multiplicities) == [2]

    def test_frames_preserve_perceived_distances(self):
        probe = SnapshotProbe()
        snapshots = self._run_probe(probe, use_random_frames=True)
        for snapshot in snapshots:
            for p in snapshot.neighbours:
                assert p.norm() == pytest.approx(0.5, abs=1e-9) or p.norm() == pytest.approx(
                    1.0, abs=1e-9
                )


class TestKNestAIntegration:
    def test_kknps_under_knesta_with_matching_k(self):
        configuration = random_connected_configuration(7, seed=21)
        result = run_simulation(
            configuration.positions,
            KKNPSAlgorithm(k=3),
            KNestAScheduler(k=3),
            SimulationConfig(max_activations=20000, convergence_epsilon=0.05, seed=21, k_bound=3),
        )
        assert result.converged
        assert result.cohesion_maintained

    def test_ando_under_knesta_random_schedule_runs(self):
        configuration = random_connected_configuration(6, seed=22)
        result = run_simulation(
            configuration.positions,
            AndoAlgorithm(),
            KNestAScheduler(k=2),
            SimulationConfig(max_activations=8000, convergence_epsilon=0.05, seed=22),
        )
        assert result.activations_processed > 0
        assert result.final_hull_diameter <= configuration.hull_diameter() + 1e-9
