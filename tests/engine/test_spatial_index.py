"""Tests for the uniform spatial hash grid and its exactness guarantee."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.algorithms import KKNPSAlgorithm
from repro.engine import SimulationConfig, Simulator, UniformGridIndex, run_simulation
from repro.engine.state import EngineState
from repro.schedulers import KAsyncScheduler, SSyncScheduler
from repro.workloads import random_connected_configuration


class TestGridMaintenance:
    def test_requires_finite_positive_range(self):
        with pytest.raises(ValueError):
            UniformGridIndex(0.0)
        with pytest.raises(ValueError):
            UniformGridIndex(math.inf)

    def test_settle_and_candidates(self):
        grid = UniformGridIndex(1.0)
        grid.settle(0, 0.5, 0.5)
        grid.settle(1, 1.5, 0.5)   # adjacent cell
        grid.settle(2, 3.5, 0.5)   # two cells away in x: out of the 3x3 block
        assert grid.candidates(0.5, 0.5).tolist() == [0, 1]
        assert grid.candidates(0.5, 0.5, exclude=0).tolist() == [1]

    def test_moving_robot_spans_segment_bbox(self):
        grid = UniformGridIndex(1.0)
        grid.begin_move(7, 0.5, 0.5, 2.5, 0.5)
        # The mover is discoverable from every cell its segment crosses.
        for x in (0.5, 1.5, 2.5):
            assert 7 in grid.candidates(x, 0.5).tolist()
        grid.settle(7, 2.5, 0.5)
        assert 7 not in grid.candidates(0.5, 0.5, ).tolist()
        assert 7 in grid.candidates(2.5, 0.5).tolist()
        assert len(grid.cells_of(7)) == 1

    def test_remove(self):
        grid = UniformGridIndex(1.0)
        grid.settle(3, 0.0, 0.0)
        grid.remove(3)
        assert grid.candidates(0.0, 0.0).size == 0
        assert len(grid) == 0

    def test_boundary_of_cell_points(self):
        """Points exactly on cell edges stay discoverable from both sides."""
        grid = UniformGridIndex(1.0)
        side = grid.cell_size
        grid.settle(0, side, 0.0)          # exactly on the x-boundary
        grid.settle(1, side, side)         # exactly on a corner
        grid.settle(2, 2 * side, 2 * side)
        # Observers just left/below the boundary still see them in the block.
        eps = 1e-9
        assert 0 in grid.candidates(side - eps, 0.0).tolist()
        assert 0 in grid.candidates(side + eps, 0.0).tolist()
        assert 1 in grid.candidates(side - eps, side - eps).tolist()
        assert 1 in grid.candidates(side + eps, side + eps).tolist()

    def test_negative_coordinates(self):
        grid = UniformGridIndex(1.0)
        grid.settle(0, -0.5, -0.5)
        grid.settle(1, 0.5, 0.5)
        assert grid.candidates(-0.1, -0.1).tolist() == [0, 1]


class TestGridExactness:
    """Grid candidates must always cover the true visible set."""

    @pytest.mark.parametrize("seed", range(8))
    def test_candidates_superset_of_visible(self, seed):
        rng = np.random.default_rng(seed)
        n, v = 60, 1.0
        positions = rng.uniform(-4.0, 4.0, size=(n, 2))
        state = EngineState(positions)
        grid = UniformGridIndex(v)
        for i in range(n):
            grid.settle(i, positions[i, 0], positions[i, 1])
        # Start some moves and finish others to mix phases.
        movers = rng.choice(n, size=n // 3, replace=False)
        for j, i in enumerate(movers):
            robot = state.robots[i]
            robot.begin_activation(float(j))
            target = positions[i] + rng.uniform(-v / 8, v / 8, size=2)
            robot.begin_move(positions[i], target, float(j), float(j) + 1.0)
            grid.begin_move(int(i), positions[i, 0], positions[i, 1], target[0], target[1])
        look_time = float(rng.uniform(0.0, n // 3 + 1.0))
        interpolated = state.positions_at(look_time)
        for observer in range(0, n, 7):
            if state.robots[observer].is_motile():
                continue
            ox, oy = positions[observer]
            candidates = set(grid.candidates(ox, oy, exclude=observer).tolist())
            for other in range(n):
                if other == observer:
                    continue
                d = math.hypot(
                    interpolated[other, 0] - ox, interpolated[other, 1] - oy
                )
                if d <= v + 1e-9:
                    assert other in candidates, (
                        f"robot {other} visible at d={d} but not a grid candidate"
                    )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_grid_and_dense_runs_bit_identical(self, seed):
        configuration = random_connected_configuration(60, seed=seed)
        results = []
        for spatial in (True, False):
            config = SimulationConfig(
                seed=seed,
                max_activations=250,
                stop_at_convergence=False,
                spatial_index=spatial,
            )
            results.append(
                run_simulation(
                    configuration.positions,
                    KKNPSAlgorithm(k=1),
                    SSyncScheduler(),
                    config,
                )
            )
        grid_run, dense_run = results
        assert tuple(grid_run.final_configuration.positions) == tuple(
            dense_run.final_configuration.positions
        )
        assert grid_run.metrics.samples == dense_run.metrics.samples
        for a, b in zip(grid_run.records, dense_run.records):
            assert a.destination == b.destination
            assert a.neighbours_seen == b.neighbours_seen

    def test_grid_and_dense_with_midmove_looks(self):
        """k-async interleavings make robots look while others are mid-move."""
        configuration = random_connected_configuration(50, seed=4)
        results = []
        for spatial in (True, False):
            config = SimulationConfig(
                seed=4,
                max_activations=250,
                stop_at_convergence=False,
                spatial_index=spatial,
                k_bound=2,
            )
            results.append(
                run_simulation(
                    configuration.positions,
                    KKNPSAlgorithm(k=2),
                    KAsyncScheduler(k=2),
                    config,
                )
            )
        grid_run, dense_run = results
        assert tuple(grid_run.final_configuration.positions) == tuple(
            dense_run.final_configuration.positions
        )
        assert grid_run.metrics.samples == dense_run.metrics.samples

    def test_simulator_builds_grid_only_when_worthwhile(self):
        configuration = random_connected_configuration(10, seed=0)
        auto = Simulator(
            configuration.positions, KKNPSAlgorithm(k=1), SSyncScheduler(),
            SimulationConfig(round_batching=False),
        )
        assert auto._grid is None  # small n: dense fallback
        forced = Simulator(
            configuration.positions, KKNPSAlgorithm(k=1), SSyncScheduler(),
            SimulationConfig(spatial_index=True, round_batching=False),
        )
        assert forced._grid is not None
        disabled = Simulator(
            configuration.positions, KKNPSAlgorithm(k=1), SSyncScheduler(),
            SimulationConfig(spatial_index=False, round_batching=False),
        )
        assert disabled._grid is None

    def test_round_batching_replaces_incremental_grid(self):
        # Under a round-structured scheduler the batched fast path owns
        # spatial lookups (a sharded grid per round), so the incremental
        # index is skipped; per-activation schedulers still build it.
        configuration = random_connected_configuration(10, seed=0)
        batched = Simulator(
            configuration.positions, KKNPSAlgorithm(k=1), SSyncScheduler(),
            SimulationConfig(spatial_index=True),
        )
        assert batched._round_batching and batched._grid is None
        asynchronous = Simulator(
            configuration.positions, KKNPSAlgorithm(k=2), KAsyncScheduler(k=2),
            SimulationConfig(spatial_index=True),
        )
        assert not asynchronous._round_batching and asynchronous._grid is not None

    def test_unlimited_visibility_forces_dense(self):
        from repro.algorithms import CenterOfGravityAlgorithm

        configuration = random_connected_configuration(40, seed=0)
        simulator = Simulator(
            configuration.positions,
            CenterOfGravityAlgorithm(),
            SSyncScheduler(),
            SimulationConfig(spatial_index=True),
        )
        assert simulator._grid is None


class TestGrid3D:
    """The dimension-generic grid in 3-space: 3x3x3 blocks, same exactness."""

    def test_settle_and_candidates_3d(self):
        grid = UniformGridIndex(1.0, dim=3)
        grid.settle(0, 0.5, 0.5, 0.5)
        grid.settle(1, 1.5, 0.5, 0.5)   # adjacent cell in x
        grid.settle(2, 0.5, 0.5, 1.5)   # adjacent cell in z
        grid.settle(3, 3.5, 0.5, 0.5)   # out of the 3x3x3 block
        assert grid.candidates(0.5, 0.5, 0.5).tolist() == [0, 1, 2]
        assert grid.candidates(0.5, 0.5, 0.5, exclude=0).tolist() == [1, 2]

    def test_moving_robot_spans_segment_bbox_3d(self):
        grid = UniformGridIndex(1.0, dim=3)
        grid.begin_move(7, 0.5, 0.5, 0.5, 2.5, 0.5, 2.5)
        for x, z in ((0.5, 0.5), (1.5, 1.5), (2.5, 2.5)):
            assert 7 in grid.candidates(x, 0.5, z).tolist()
        grid.settle(7, 2.5, 0.5, 2.5)
        assert 7 not in grid.candidates(0.5, 0.5, 0.5).tolist()
        assert len(grid.cells_of(7)) == 1

    def test_coordinate_arity_enforced(self):
        grid = UniformGridIndex(1.0, dim=3)
        with pytest.raises(ValueError):
            grid.settle(0, 0.5, 0.5)
        with pytest.raises(ValueError):
            grid.begin_move(0, 0.0, 0.0, 0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            grid.candidates(0.0, 0.0)

    @pytest.mark.parametrize("seed", range(5))
    def test_candidates_superset_of_visible_3d(self, seed):
        rng = np.random.default_rng(seed)
        n, v = 80, 1.0
        positions = rng.uniform(-3.0, 3.0, size=(n, 3))
        grid = UniformGridIndex(v, dim=3)
        for i in range(n):
            grid.settle(i, positions[i, 0], positions[i, 1], positions[i, 2])
        for observer in range(0, n, 5):
            ox, oy, oz = positions[observer]
            candidates = set(
                grid.candidates(ox, oy, oz, exclude=observer).tolist()
            )
            deltas = positions - positions[observer]
            distances = np.sqrt((deltas * deltas).sum(axis=1))
            for other in range(n):
                if other != observer and distances[other] <= v + 1e-9:
                    assert other in candidates


class TestShardedGridIndex:
    """The batch-built block-sharded grid: exactness and replicate isolation."""

    @pytest.mark.parametrize("dim", [2, 3])
    @pytest.mark.parametrize("seed", range(4))
    def test_candidates_cover_all_within_cell_size(self, dim, seed):
        from repro.engine.spatial_index import ShardedGridIndex

        rng = np.random.default_rng(seed)
        n, cell = 80, 0.9
        positions = rng.uniform(-3.0, 3.0, size=(n, dim))
        shard = ShardedGridIndex(positions, cell)
        deltas = positions[:, None, :] - positions[None, :, :]
        distances = np.sqrt((deltas * deltas).sum(axis=-1))
        for robot in range(n):
            candidates = shard.candidates(robot)
            # Ascending, includes the robot itself (callers drop it at d=0).
            assert robot in candidates.tolist()
            assert np.all(np.diff(candidates) > 0)
            within = set(np.flatnonzero(distances[robot] <= cell).tolist())
            assert within <= set(candidates.tolist())

    @pytest.mark.parametrize("seed", range(4))
    def test_neighbour_pairs_cover_close_pairs_exactly_once(self, seed):
        from repro.engine.spatial_index import ShardedGridIndex

        rng = np.random.default_rng(seed)
        n, cell = 70, 0.8
        positions = rng.uniform(-2.5, 2.5, size=(n, 2))
        shard = ShardedGridIndex(positions, cell)
        i, j = shard.neighbour_pairs()
        assert np.all(i < j)
        pairs = list(zip(i.tolist(), j.tolist()))
        assert len(pairs) == len(set(pairs))  # each pair at most once
        deltas = positions[:, None, :] - positions[None, :, :]
        distances = np.sqrt((deltas * deltas).sum(axis=-1))
        close = {
            (a, b)
            for a in range(n)
            for b in range(a + 1, n)
            if distances[a, b] <= cell
        }
        assert close <= set(pairs)

    def test_replicate_batching_isolates_runs(self):
        from repro.engine.spatial_index import ShardedGridIndex

        rng = np.random.default_rng(9)
        runs, n = 3, 40
        # Identical coordinates in every run: without run-keyed blocks the
        # replicates would alias into shared candidate sets.
        base = rng.uniform(-2.0, 2.0, size=(n, 2))
        tensor = np.broadcast_to(base, (runs, n, 2))
        shard = ShardedGridIndex.from_replicates(tensor, 0.9)
        single = ShardedGridIndex(base, 0.9)
        for run in range(runs):
            offset = run * n
            for robot in range(n):
                flat = shard.candidates(offset + robot)
                assert np.all(flat >= offset) and np.all(flat < offset + n)
                assert np.array_equal(flat - offset, single.candidates(robot))
        i, j = shard.neighbour_pairs()
        assert np.array_equal(i // n, j // n)  # no pair crosses runs

    def test_min_pairwise_grid_matches_dense(self):
        from repro.engine.metrics import min_pairwise_distance_grid

        rng = np.random.default_rng(5)
        for dim in (2, 3):
            for _ in range(4):
                arr = rng.uniform(-4.0, 4.0, size=(60, dim))
                deltas = arr[:, None, :] - arr[None, :, :]
                squared = (deltas * deltas).sum(axis=-1)
                np.fill_diagonal(squared, math.inf)
                dense = float(math.sqrt(squared.min()))
                # Start far below the true minimum so the cell-doubling
                # escalation path is exercised too.
                for initial_cell in (1.0, 1e-3):
                    assert min_pairwise_distance_grid(arr, initial_cell) == dense

    def test_min_pairwise_grid_small_sets(self):
        from repro.engine.metrics import min_pairwise_distance_grid

        assert min_pairwise_distance_grid(np.zeros((0, 2)), 1.0) == 0.0
        assert min_pairwise_distance_grid(np.zeros((1, 2)), 1.0) == 0.0
        two = np.array([[0.0, 0.0], [3.0, 4.0]])
        assert min_pairwise_distance_grid(two, 1.0) == 5.0
