"""Contract tests for the dimension-generic continuous-time kernel.

The tentpole invariant — one engine core, two destination rules, one
scheduler family — is pinned structurally here; the *numerical*
equivalences (2D array==object, 3D round adapter==object reference) live
in ``tests/engine/test_engine_modes.py`` and
``tests/spatial3d/test_engine3.py``, both of which now exercise the
kernel on every run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import SimulationConfig, Simulator
from repro.engine.kernel import ContinuousKernel
from repro.engine.state import EngineState
from repro.schedulers import FSyncScheduler, KAsyncScheduler
from repro.spatial3d import (
    AsyncSimulation3Config,
    KKNPS3Algorithm,
    Kernel3,
    random_connected_configuration3,
    run_simulation3_async,
)
from repro.spatial3d.engine3 import Round3Scheduler, _RoundKernel3
from repro.algorithms import KKNPSAlgorithm
from repro.workloads import line_configuration


class TestOneKernelTwoEngines:
    def test_both_engines_subclass_the_kernel(self):
        assert issubclass(Simulator, ContinuousKernel)
        assert issubclass(Kernel3, ContinuousKernel)
        assert issubclass(_RoundKernel3, ContinuousKernel)

    def test_base_kernel_requires_a_decide_move_hook(self):
        state = EngineState([(0.0, 0.0), (0.5, 0.0)])
        kernel = ContinuousKernel(
            state, KKNPSAlgorithm(k=1), FSyncScheduler(), SimulationConfig()
        )
        with pytest.raises(NotImplementedError):
            kernel.run_kernel()

    def test_state_dimension_flows_from_positions(self):
        planar = Simulator(
            line_configuration(3).positions, KKNPSAlgorithm(k=1), FSyncScheduler()
        )
        assert planar.dim == 2
        spatial = EngineState.from_array(np.zeros((4, 3)))
        assert spatial.arrays.dim == 3
        assert spatial.robots == []  # Robot views are planar-only


class TestKernel3Semantics:
    def test_simultaneous_fsync_looks_see_round_start_positions(self):
        """Under FSync all robots look at t=r and see each other's origins."""
        configuration = random_connected_configuration3(5, seed=0)
        result = run_simulation3_async(
            configuration.positions,
            KKNPS3Algorithm(k=1),
            FSyncScheduler(),
            AsyncSimulation3Config(
                visibility_range=configuration.visibility_range,
                seed=0,
                max_activations=40,
                stop_at_convergence=False,
            ),
        )
        assert result.activations_processed == 40
        # FSync activates everyone each round: 8 full rounds of 5 robots.
        assert all(count == 8 for count in result.activation_counts.values())

    def test_crashed_robots_anchor_the_swarm(self):
        configuration = random_connected_configuration3(6, seed=4)
        anchor = np.array(
            [configuration.positions[0].x, configuration.positions[0].y,
             configuration.positions[0].z]
        )
        result = run_simulation3_async(
            configuration.positions,
            KKNPS3Algorithm(k=1),
            KAsyncScheduler(k=1),
            AsyncSimulation3Config(
                visibility_range=configuration.visibility_range,
                seed=4,
                max_activations=800,
                convergence_epsilon=0.05,
                crashed_robots=(0,),
            ),
        )
        final_anchor = result.final_configuration.positions[0]
        assert np.allclose(anchor, (final_anchor.x, final_anchor.y, final_anchor.z))
        assert result.activation_counts[0] == 0

    def test_angular_distortion_rejected_in_3d_config(self):
        from repro.geometry.transforms import SymmetricDistortion
        from repro.model import PerceptionModel

        with pytest.raises(ValueError, match="planar"):
            AsyncSimulation3Config(
                perception=PerceptionModel(
                    distortion=SymmetricDistortion(amplitude=0.1, frequency=2)
                )
            )

    def test_grid_equals_dense_in_continuous_3d(self):
        configuration = random_connected_configuration3(24, seed=6)
        results = []
        for spatial_index in (True, False):
            results.append(
                run_simulation3_async(
                    configuration.positions,
                    KKNPS3Algorithm(k=2),
                    KAsyncScheduler(k=2),
                    AsyncSimulation3Config(
                        visibility_range=configuration.visibility_range,
                        seed=6,
                        max_activations=300,
                        stop_at_convergence=False,
                        spatial_index=spatial_index,
                    ),
                )
            )
        grid, dense = results
        assert [
            (p.x, p.y, p.z) for p in grid.final_configuration.positions
        ] == [(p.x, p.y, p.z) for p in dense.final_configuration.positions]
        assert grid.metrics.samples == dense.metrics.samples


class TestRoundSchedulerAdapter:
    def test_round_scheduler_issues_simultaneous_round_batches(self):
        scheduler = Round3Scheduler(
            activation_probability=1.0,
            max_rounds=3,
            convergence_epsilon=1e-12,
            visibility_range=1.0,
            edge_index=np.empty((0, 2), dtype=np.intp),
        )
        scheduler.reset(4, np.random.default_rng(0))

        class _View:
            @staticmethod
            def positions_array(at_time):
                return np.zeros((4, 3))

        first = scheduler.next_batch(_View())
        assert [a.robot_id for a in first] == [0, 1, 2, 3]
        assert {a.look_time for a in first} == {0.0}
        assert all(a.end_time < 1.0 for a in first)
