"""Pins: the batched round fast path is bit-identical to the per-activation path.

The kernel's round fast path (``ContinuousKernel._process_round``) and the
Simulator's vectorized 2D decider are *performance* paths only — every
float they produce must equal the per-activation reference exactly, RNG
draws included.  These pins run the same simulation with
``round_batching`` on and off and compare full fingerprints: final
positions, every metrics sample, every activation record, convergence
and final times.
"""

from __future__ import annotations

import pytest

from repro.algorithms import AndoAlgorithm, KKNPSAlgorithm
from repro.engine import SimulationConfig, Simulator, run_simulation
from repro.model.errors import MotionModel, PerceptionModel
from repro.schedulers import FSyncScheduler, KAsyncScheduler, SSyncScheduler
from repro.workloads import random_connected_configuration


def _pair(algorithm_factory, scheduler_factory, n=40, seed=11, **config_kw):
    """Run fast-path and reference simulations of the same scenario."""
    configuration = random_connected_configuration(n, seed=seed)
    results = []
    for round_batching in (None, False):
        config_kw["round_batching"] = round_batching
        config_kw.setdefault("seed", seed)
        config_kw.setdefault("max_activations", 160)
        config_kw.setdefault("stop_at_convergence", False)
        results.append(
            run_simulation(
                configuration.positions,
                algorithm_factory(),
                scheduler_factory(),
                SimulationConfig(**config_kw),
            )
        )
    return results


def _assert_identical(fast, reference):
    assert tuple(fast.final_configuration.positions) == tuple(
        reference.final_configuration.positions
    )
    assert fast.metrics.samples == reference.metrics.samples
    assert fast.activations_processed == reference.activations_processed
    assert fast.convergence_time == reference.convergence_time
    assert fast.final_time == reference.final_time
    assert fast.cohesion_maintained == reference.cohesion_maintained
    assert len(fast.records) == len(reference.records)
    for a, b in zip(fast.records, reference.records):
        assert a.destination == b.destination
        assert a.neighbours_seen == b.neighbours_seen


SCHEDULERS = (
    ("fsync", FSyncScheduler),
    ("ssync", SSyncScheduler),
)
ALGORITHMS = (
    ("kknps", lambda: KKNPSAlgorithm(k=1)),
    ("ando", AndoAlgorithm),
)


class TestRoundBatchingPins:
    @pytest.mark.parametrize("sched_name,scheduler", SCHEDULERS)
    @pytest.mark.parametrize("algo_name,algorithm", ALGORITHMS)
    @pytest.mark.parametrize("spatial", [True, False])
    def test_exact_models(self, sched_name, scheduler, algo_name, algorithm, spatial):
        fast, reference = _pair(algorithm, scheduler, spatial_index=spatial)
        _assert_identical(fast, reference)

    @pytest.mark.parametrize("sched_name,scheduler", SCHEDULERS)
    def test_error_models(self, sched_name, scheduler):
        """Perception and motion error draw from the same RNG stream."""
        fast, reference = _pair(
            lambda: KKNPSAlgorithm(k=1),
            scheduler,
            perception=PerceptionModel(distance_error=0.05),
            motion=MotionModel(xi=0.6, deviation="linear", coefficient=0.05),
        )
        _assert_identical(fast, reference)

    def test_no_frames_tier_b(self):
        """use_random_frames=False exercises the frame-free vectorized decider."""
        fast, reference = _pair(
            lambda: KKNPSAlgorithm(k=1), SSyncScheduler, use_random_frames=False
        )
        _assert_identical(fast, reference)

    def test_crashes_and_record_every(self):
        fast, reference = _pair(
            AndoAlgorithm,
            SSyncScheduler,
            crashed_robots=(0, 3, 7),
            record_every=5,
        )
        _assert_identical(fast, reference)

    def test_stop_at_convergence(self):
        fast, reference = _pair(
            lambda: KKNPSAlgorithm(k=1),
            FSyncScheduler,
            n=12,
            stop_at_convergence=True,
            convergence_epsilon=0.3,
            max_activations=4000,
        )
        _assert_identical(fast, reference)

    def test_forced_on_async_scheduler_is_safe(self):
        """round_batching=True under k-async: per-batch validation rejects
        batches that are not simultaneous rounds, so the run falls back to
        the per-activation path and stays bit-identical."""
        configuration = random_connected_configuration(30, seed=5)
        results = []
        for round_batching in (True, False):
            results.append(
                run_simulation(
                    configuration.positions,
                    KKNPSAlgorithm(k=2),
                    KAsyncScheduler(k=2),
                    SimulationConfig(
                        seed=5,
                        max_activations=200,
                        stop_at_convergence=False,
                        k_bound=2,
                        round_batching=round_batching,
                    ),
                )
            )
        _assert_identical(*results)

    def test_object_engine_never_batches(self):
        configuration = random_connected_configuration(10, seed=0)
        simulator = Simulator(
            configuration.positions,
            KKNPSAlgorithm(k=1),
            SSyncScheduler(),
            SimulationConfig(engine_mode="object", round_batching=True),
        )
        assert not simulator._round_batching


class TestWorkloadMatrix:
    """Grid vs dense workloads through the same bit-identity harness."""

    @pytest.mark.parametrize("sched_name,scheduler", SCHEDULERS)
    @pytest.mark.parametrize("error", ["exact", "noisy"])
    def test_grid_workload(self, sched_name, scheduler, error):
        from repro.workloads import truncated_grid_configuration

        configuration = truncated_grid_configuration(36, spacing=0.7)
        config_kw = dict(seed=13, max_activations=160, stop_at_convergence=False)
        if error == "noisy":
            config_kw["perception"] = PerceptionModel(distance_error=0.05)
            config_kw["motion"] = MotionModel(
                xi=0.6, deviation="linear", coefficient=0.05
            )
        results = []
        for round_batching in (None, False):
            results.append(
                run_simulation(
                    configuration.positions,
                    KKNPSAlgorithm(k=1),
                    scheduler(),
                    SimulationConfig(round_batching=round_batching, **config_kw),
                )
            )
        _assert_identical(*results)

    @pytest.mark.parametrize("error", ["exact", "noisy"])
    def test_dense_workload(self, error):
        """A dense cluster (every robot sees most others) through the batch."""
        from repro.workloads import random_connected_configuration

        configuration = random_connected_configuration(
            50, seed=21, attach_radius_fraction=0.25
        )
        config_kw = dict(seed=21, max_activations=150, stop_at_convergence=False)
        if error == "noisy":
            config_kw["perception"] = PerceptionModel(distance_error=0.05)
            config_kw["motion"] = MotionModel(
                xi=0.6, deviation="linear", coefficient=0.05
            )
        results = []
        for round_batching in (None, False):
            results.append(
                run_simulation(
                    configuration.positions,
                    KKNPSAlgorithm(k=1),
                    SSyncScheduler(),
                    SimulationConfig(round_batching=round_batching, **config_kw),
                )
            )
        _assert_identical(*results)
