"""Tests for the event-driven simulator."""

import math

import pytest

from repro.algorithms import KKNPSAlgorithm, StationaryAlgorithm
from repro.engine import SimulationConfig, Simulator, run_simulation
from repro.geometry import Point
from repro.model import Activation, MotionModel, PerceptionModel
from repro.schedulers import FSyncScheduler, KAsyncScheduler, SSyncScheduler, ScriptedScheduler
from repro.workloads import line_configuration, two_robot_configuration


class TestConfigValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SimulationConfig(visibility_range=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(max_activations=0)
        with pytest.raises(ValueError):
            SimulationConfig(convergence_epsilon=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(record_every=0)


class TestBasicRuns:
    def test_two_robots_converge_under_fsync(self):
        config = two_robot_configuration(0.8)
        result = run_simulation(
            config.positions,
            KKNPSAlgorithm(k=1),
            FSyncScheduler(),
            SimulationConfig(max_activations=500, convergence_epsilon=0.01),
        )
        assert result.converged
        assert result.cohesion_maintained
        assert result.final_hull_diameter <= 0.01 + 1e-9

    def test_stationary_algorithm_never_moves(self):
        config = line_configuration(4)
        result = run_simulation(
            config.positions,
            StationaryAlgorithm(),
            FSyncScheduler(),
            SimulationConfig(max_activations=40, convergence_epsilon=1e-6,
                             stop_at_convergence=False),
        )
        for initial, final in zip(config.positions, result.final_configuration.positions):
            assert initial.is_close(final)
        assert result.activations_processed == 40

    def test_activation_counts_and_records(self):
        config = line_configuration(3)
        result = run_simulation(
            config.positions,
            KKNPSAlgorithm(k=1),
            FSyncScheduler(),
            SimulationConfig(max_activations=30, convergence_epsilon=1e-9,
                             stop_at_convergence=False),
        )
        assert sum(result.activation_counts.values()) == result.activations_processed
        assert len(result.records) == result.activations_processed
        for record in result.records:
            assert record.moved_distance <= 1.0 / 8.0 + 1e-9

    def test_metrics_sampled_every_activation(self):
        config = line_configuration(3)
        result = run_simulation(
            config.positions,
            KKNPSAlgorithm(k=1),
            FSyncScheduler(),
            SimulationConfig(max_activations=12, convergence_epsilon=1e-9,
                             stop_at_convergence=False, record_every=1),
        )
        # One initial sample, one per activation, one final sample.
        assert len(result.metrics.samples) == 12 + 2

    def test_trajectories_recorded_when_requested(self):
        config = line_configuration(3)
        result = run_simulation(
            config.positions,
            KKNPSAlgorithm(k=1),
            FSyncScheduler(),
            SimulationConfig(max_activations=10, record_trajectories=True,
                             convergence_epsilon=1e-9, stop_at_convergence=False),
        )
        assert result.trajectories is not None
        assert result.trajectories.robot_ids() == [0, 1, 2]

    def test_stop_at_convergence_halts_early(self):
        config = two_robot_configuration(0.5)
        early = run_simulation(
            config.positions, KKNPSAlgorithm(k=1), FSyncScheduler(),
            SimulationConfig(max_activations=1000, convergence_epsilon=0.05),
        )
        assert early.converged
        assert early.activations_processed < 1000

    def test_max_time_limits_the_run(self):
        config = line_configuration(3)
        result = run_simulation(
            config.positions, KKNPSAlgorithm(k=1), FSyncScheduler(),
            SimulationConfig(max_activations=10000, max_time=5.0, convergence_epsilon=1e-9,
                             stop_at_convergence=False),
        )
        assert result.final_time <= 6.0


class TestSchedulingSemantics:
    def test_scripted_schedule_sees_stale_positions(self):
        # Robot 1 looks while robot 0 is still computing, so it sees robot 0
        # at its pre-move position even though robot 0 moves later.
        positions = [Point(0.0, 0.0), Point(0.8, 0.0)]
        script = [
            Activation(robot_id=0, look_time=0.0, compute_duration=1.0, move_duration=1.0),
            Activation(robot_id=1, look_time=0.5, compute_duration=0.1, move_duration=0.1),
        ]
        result = run_simulation(
            positions,
            KKNPSAlgorithm(k=1),
            ScriptedScheduler(script),
            SimulationConfig(max_activations=2, convergence_epsilon=1e-9,
                             stop_at_convergence=False, use_random_frames=False),
        )
        final = result.final_configuration
        # Robot 1 moved toward robot 0's OLD position (to its own left).
        assert final[1].x < 0.8
        assert final[1].x == pytest.approx(0.8 - 0.1, abs=1e-9)

    def test_scheduler_exhaustion_ends_run(self):
        positions = [Point(0.0, 0.0), Point(0.5, 0.0)]
        script = [Activation(robot_id=0, look_time=0.0, move_duration=0.1)]
        result = run_simulation(
            positions, KKNPSAlgorithm(k=1), ScriptedScheduler(script),
            SimulationConfig(max_activations=100, convergence_epsilon=1e-9,
                             stop_at_convergence=False),
        )
        assert result.activations_processed == 1

    def test_crashed_robot_does_not_move_and_others_converge_to_it(self):
        config = line_configuration(4, spacing=0.5)
        result = run_simulation(
            config.positions,
            KKNPSAlgorithm(k=1),
            SSyncScheduler(),
            SimulationConfig(max_activations=3000, convergence_epsilon=0.02,
                             crashed_robots=(0,)),
        )
        assert result.converged
        assert result.final_configuration[0].is_close(config.positions[0])
        # Everyone else ended up near the crashed robot.
        for p in result.final_configuration.positions:
            assert p.distance_to(config.positions[0]) <= 0.02 + 1e-9

    def test_xi_rigid_motion_still_converges(self):
        config = two_robot_configuration(0.8)
        result = run_simulation(
            config.positions,
            KKNPSAlgorithm(k=1),
            KAsyncScheduler(k=1, progress_fraction=(0.3, 0.6)),
            SimulationConfig(max_activations=3000, convergence_epsilon=0.02,
                             motion=MotionModel(xi=0.3)),
        )
        assert result.converged
        assert result.cohesion_maintained

    def test_perception_error_with_tolerant_algorithm(self):
        config = line_configuration(4, spacing=0.6)
        result = run_simulation(
            config.positions,
            KKNPSAlgorithm(k=1, distance_error_tolerance=0.05),
            SSyncScheduler(),
            SimulationConfig(
                max_activations=4000, convergence_epsilon=0.03,
                perception=PerceptionModel(distance_error=0.05),
            ),
        )
        assert result.converged
        assert result.cohesion_maintained

    def test_engine_view_protocol(self):
        config = line_configuration(3)
        simulator = Simulator(
            config.positions, KKNPSAlgorithm(k=1), FSyncScheduler(), SimulationConfig()
        )
        assert simulator.n_robots == 3
        assert simulator.time == 0.0
        assert len(simulator.positions()) == 3
