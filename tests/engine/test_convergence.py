"""Tests for convergence-rate measures (summaries, halving, epochs)."""

import pytest

from repro.engine import epochs, epochs_to_converge, rounds_to_halve, summarize, time_to_halve
from repro.engine.metrics import MetricsSample


def sample(time, diameter):
    return MetricsSample(
        time=time,
        hull_diameter=diameter,
        hull_perimeter=3 * diameter,
        hull_radius=diameter / 2,
        min_pairwise_distance=diameter / 10,
        initial_edges_preserved=True,
        broken_edge_count=0,
        activations_processed=int(time),
    )


HISTORY = [sample(t, 1.0 * (0.5 ** t)) for t in range(6)]


class TestSummaries:
    def test_summarize_basic(self):
        summary = summarize(HISTORY, epsilon=0.1)
        assert summary.initial_diameter == pytest.approx(1.0)
        assert summary.final_diameter == pytest.approx(0.5 ** 5)
        assert summary.converged
        assert summary.convergence_time == 4.0  # first diameter <= 0.1 is 0.0625 at t=4
        assert summary.halvings_observed == 5
        assert summary.reduction_factor == pytest.approx(32.0)

    def test_summarize_empty(self):
        summary = summarize([], epsilon=0.1)
        assert not summary.converged
        assert summary.samples == 0

    def test_summarize_not_converged(self):
        summary = summarize(HISTORY[:2], epsilon=0.01)
        assert not summary.converged
        assert summary.convergence_time is None

    def test_time_and_rounds_to_halve(self):
        assert time_to_halve(HISTORY) == 1.0
        assert rounds_to_halve(HISTORY, round_length=0.5) == 2.0
        assert time_to_halve([sample(0, 1.0)]) is None

    def test_time_to_halve_degenerate_initial(self):
        assert time_to_halve([sample(3.0, 0.0)]) == 3.0


class TestEpochs:
    def test_epochs_partition(self):
        times = {0: [1.0, 3.0, 5.0], 1: [2.0, 4.0, 6.0]}
        spans = epochs(times)
        assert spans[0] == (0.0, 2.0)
        # The second epoch starts just after 2.0 and ends when both robots
        # have completed another cycle.
        assert spans[1][1] == 4.0

    def test_epochs_empty(self):
        assert epochs({}) == []
        assert epochs({0: []}) == []

    def test_epochs_to_converge(self):
        times = {0: [1.0, 3.0, 5.0], 1: [2.0, 4.0, 6.0]}
        count = epochs_to_converge(times, HISTORY, epsilon=0.1)
        assert count is not None
        assert count >= 1

    def test_epochs_to_converge_when_never_converged(self):
        times = {0: [1.0], 1: [2.0]}
        assert epochs_to_converge(times, HISTORY[:1], epsilon=1e-9) is None
