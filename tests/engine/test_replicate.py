"""Pins: the replicate-batched engine is bit-identical to serial runs.

``run_replicated_simulations`` advances a bundle of seed-replicate lanes
through one committed tensor, one shared grid and one batched decide
pass per round — but every float it produces must equal what
``Simulator(*factory()).run()`` computes lane by lane, RNG draws
included.  These pins run both sides over a matrix of schedulers, error
models, crash injections and recording cadences and compare full result
fingerprints.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import KKNPSAlgorithm
from repro.engine import SimulationConfig, Simulator
from repro.engine.fanout import kknps_destination_segment, kknps_destinations_all
from repro.engine.replicate import run_replicated_simulations
from repro.model.errors import MotionModel, PerceptionModel
from repro.schedulers import FSyncScheduler, KAsyncScheduler, SSyncScheduler
from repro.workloads import random_connected_configuration

ERROR_MODELS = {
    "exact": lambda: (PerceptionModel.exact(), MotionModel.rigid()),
    "distance-5": lambda: (PerceptionModel(distance_error=0.05), MotionModel.rigid()),
    "nonrigid-50": lambda: (PerceptionModel.exact(), MotionModel(xi=0.5)),
}


def _factory(n, seed, scheduler_factory=SSyncScheduler, error_model="exact", **config_kw):
    """A lane factory for one (workload seed == RNG seed) scenario."""

    def factory():
        configuration = random_connected_configuration(n, seed=seed)
        perception, motion = ERROR_MODELS[error_model]()
        config = SimulationConfig(
            visibility_range=configuration.visibility_range,
            perception=perception,
            motion=motion,
            seed=seed,
            **config_kw,
        )
        return configuration.positions, KKNPSAlgorithm(), scheduler_factory(), config

    return factory


def _assert_identical(serial, batched):
    """Full-fingerprint equality, field by field for a clear failure."""
    assert batched.activations_processed == serial.activations_processed
    assert tuple(batched.final_configuration.positions) == tuple(
        serial.final_configuration.positions
    )
    assert batched.metrics.samples == serial.metrics.samples
    assert batched.records == serial.records
    assert batched.activation_end_times == serial.activation_end_times
    assert batched.converged == serial.converged
    assert batched.convergence_time == serial.convergence_time
    assert batched.cohesion_maintained == serial.cohesion_maintained
    assert batched.final_time == serial.final_time


def _run_both(factories, **replicate_kw):
    serial = [Simulator(*factory()).run() for factory in factories]
    replicate_kw.setdefault("fanout_workers", 0)
    batched = run_replicated_simulations(factories, **replicate_kw)
    assert len(batched) == len(serial)
    for a, b in zip(serial, batched):
        _assert_identical(a, b)
    return serial, batched


class TestBitEqualityMatrix:
    @pytest.mark.parametrize("scheduler_name,scheduler_factory",
                             [("fsync", FSyncScheduler), ("ssync", SSyncScheduler)])
    @pytest.mark.parametrize("error_model", sorted(ERROR_MODELS))
    @pytest.mark.parametrize("record_every", [1, 7])
    def test_matrix(self, scheduler_name, scheduler_factory, error_model, record_every):
        _run_both(
            [
                _factory(
                    12,
                    seed,
                    scheduler_factory=scheduler_factory,
                    error_model=error_model,
                    max_activations=120,
                    stop_at_convergence=False,
                    record_every=record_every,
                )
                for seed in range(3)
            ]
        )

    @pytest.mark.parametrize("scheduler_factory", [FSyncScheduler, SSyncScheduler])
    def test_crash_injection(self, scheduler_factory):
        """Crashed robots push lanes onto the per-lane observe path."""
        _run_both(
            [
                _factory(
                    10,
                    seed,
                    scheduler_factory=scheduler_factory,
                    max_activations=90,
                    stop_at_convergence=False,
                    crashed_robots=(0, 3),
                )
                for seed in range(3)
            ]
        )

    def test_crashed_and_healthy_lanes_mix(self):
        """A bundle mixing crash-bearing and crash-free lanes stays exact."""
        factories = [
            _factory(10, 0, max_activations=90, stop_at_convergence=False),
            _factory(10, 1, max_activations=90, stop_at_convergence=False,
                     crashed_robots=(2,)),
            _factory(10, 2, max_activations=90, stop_at_convergence=False),
        ]
        _run_both(factories)


class TestBundleShapes:
    def test_mixed_bundle_sizes(self):
        """Lanes of different n group separately but still run in one call."""
        factories = [
            _factory(n, seed, max_activations=80, stop_at_convergence=False)
            for n, seed in [(6, 0), (6, 1), (11, 2), (11, 3), (11, 4), (4, 5)]
        ]
        _run_both(factories)

    def test_mid_bundle_convergence_dropout(self):
        """Lanes converging at different rounds drop out without skewing peers."""
        factories = [
            _factory(8, seed, max_activations=4000, convergence_epsilon=0.3,
                     stop_at_convergence=True)
            for seed in range(5)
        ]
        serial, _ = _run_both(factories)
        converged = [r for r in serial if r.converged]
        assert len(converged) >= 2, "scenario must actually converge to test dropout"
        times = {r.convergence_time for r in converged}
        assert len(times) >= 2, "lanes must drop out at different times"

    def test_single_lane_bundle(self):
        _run_both([_factory(9, 0, max_activations=60, stop_at_convergence=False)])

    def test_vector_ineligible_lane_falls_back(self):
        """A continuous-time lane runs via the serial fallback, bit-identical."""
        factories = [
            _factory(8, 0, max_activations=60, stop_at_convergence=False),
            _factory(8, 1, scheduler_factory=lambda: KAsyncScheduler(k=2),
                     max_activations=60, stop_at_convergence=False),
            _factory(8, 2, max_activations=60, stop_at_convergence=False),
        ]
        _run_both(factories)

    def test_forced_fanout_pool_is_exact(self):
        """The shared-memory fan-out merges worker slices bit-identically."""
        factories = [
            _factory(10, seed, max_activations=60, stop_at_convergence=False)
            for seed in range(3)
        ]
        _run_both(factories, fanout_workers=2, fanout_min_robots=0)


class TestDestinationsAllEquivalence:
    """The vectorized decide pre-pass equals the scalar core bitwise."""

    def _random_case(self, rng, acts, lanes):
        counts = rng.integers(0, 7, size=acts)
        rows = int(counts.sum())
        px = rng.uniform(-1.0, 1.0, size=rows)
        py = rng.uniform(-1.0, 1.0, size=rows)
        ends = np.cumsum(counts).astype(np.int64)
        starts = ends - counts
        lane_of = rng.integers(0, lanes, size=acts).astype(np.int64)
        lane_consts = []
        for lane in range(lanes):
            tol = 0.05 if lane % 2 else 0.0
            lane_consts.append((0.5, tol, 1.0, 8.0, 1.0))
        return px, py, starts, ends, lane_of, lane_consts

    @pytest.mark.parametrize("trial", range(5))
    def test_random_rows(self, trial):
        rng = np.random.default_rng(100 + trial)
        px, py, starts, ends, lane_of, lane_consts = self._random_case(rng, 64, 3)
        scalar = np.zeros((64, 2), dtype=np.float64)
        vector = np.zeros((64, 2), dtype=np.float64)
        kknps_destination_segment(px, py, starts, ends, lane_of, lane_consts, 0, 64, scalar)
        kknps_destinations_all(px, py, starts, ends, lane_of, lane_consts, vector)
        assert scalar.tobytes() == vector.tobytes()

    def test_edge_rows(self):
        """Empty activations, collapsed norms, surrounded robots, clusters."""
        px_rows, py_rows, counts = [], [], []
        # Empty activation.
        counts.append(0)
        # All neighbours at (numerically) zero distance: v_y <= EPS.
        px_rows += [0.0, 1e-12]
        py_rows += [0.0, 0.0]
        counts.append(2)
        # Surrounded: four distant directions spanning more than a half-plane.
        px_rows += [1.0, -1.0, 0.0, 0.0]
        py_rows += [0.0, 0.0, 1.0, -1.0]
        counts.append(4)
        # All close (no distant): the argmax fallback direction.
        px_rows += [0.1, 0.12, 0.09]
        py_rows += [0.05, 0.0, -0.02]
        counts.append(3)
        # Single distant direction.
        px_rows += [0.9, 0.01]
        py_rows += [0.1, 0.01]
        counts.append(2)
        counts = np.asarray(counts, dtype=np.int64)
        acts = len(counts)
        px = np.asarray(px_rows, dtype=np.float64)
        py = np.asarray(py_rows, dtype=np.float64)
        ends = np.cumsum(counts)
        starts = ends - counts
        lane_of = np.zeros(acts, dtype=np.int64)
        lane_consts = [(0.5, 0.0, 1.0, 8.0, 1.0)]
        scalar = np.zeros((acts, 2), dtype=np.float64)
        vector = np.zeros((acts, 2), dtype=np.float64)
        kknps_destination_segment(px, py, starts, ends, lane_of, lane_consts, 0, acts, scalar)
        kknps_destinations_all(px, py, starts, ends, lane_of, lane_consts, vector)
        assert scalar.tobytes() == vector.tobytes()
        # The surrounded and collapsed activations stay put, the others move.
        assert scalar[1].tolist() == [0.0, 0.0]
        assert scalar[2].tolist() == [0.0, 0.0]
        assert scalar[4].tolist() != [0.0, 0.0]
