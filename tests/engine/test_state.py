"""Tests for the structure-of-arrays kinematic state and robot views."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.state import EngineState
from repro.geometry import Point
from repro.model import KinematicArrays, Phase, Robot


class TestKinematicArrays:
    def test_from_positions(self):
        arrays = KinematicArrays.from_positions([(0, 0), (1, 2), (3, 4)])
        assert arrays.n == 3
        assert arrays.position[1].tolist() == [1.0, 2.0]
        assert not arrays.any_moving()

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            KinematicArrays(-1)

    def test_vectorized_positions_match_scalar(self):
        state = EngineState([(0.0, 0.0), (2.0, 0.0), (0.0, 3.0), (5.0, 5.0)])
        r1, r2 = state.robots[1], state.robots[2]
        for robot, dest, t0, t1 in ((r1, (3.0, 1.0), 1.0, 3.0), (r2, (0.0, 2.0), 2.0, 2.0)):
            robot.begin_activation(t0)
            robot.begin_move(robot.position, dest, t0, t1)
        for t in (0.0, 0.5, 1.0, 1.7, 2.0, 2.5, 3.0, 10.0):
            batch = state.positions_at(t)
            for i, robot in enumerate(state.robots):
                scalar = robot.position_at(t)
                assert batch[i, 0] == scalar.x and batch[i, 1] == scalar.y

    def test_positions_at_subset_ordering(self):
        state = EngineState([(float(i), 0.0) for i in range(6)])
        subset = state.positions_at(0.0, np.array([4, 1, 3]))
        assert subset[:, 0].tolist() == [4.0, 1.0, 3.0]

    def test_completed_movers(self):
        state = EngineState([(0.0, 0.0), (1.0, 0.0)])
        robot = state.robots[0]
        robot.begin_activation(0.0)
        robot.begin_move((0, 0), (1, 1), 0.0, 2.0)
        assert state.completed_movers(1.0).tolist() == []
        assert state.completed_movers(2.0).tolist() == [0]


class TestRobotViews:
    def test_views_share_the_store(self):
        state = EngineState([(0.0, 0.0), (1.0, 1.0)])
        robot = state.robots[0]
        robot.begin_activation(0.0)
        robot.begin_move((0, 0), (4, 0), 0.0, 1.0)
        assert state.any_moving()
        robot.finish_move()
        assert state.committed_positions()[0].tolist() == [4.0, 0.0]
        assert robot.position == Point(4.0, 0.0)
        assert robot.total_distance_travelled == pytest.approx(4.0)

    def test_standalone_robot_allocates_own_store(self):
        a = Robot(robot_id=0, position=Point(1, 2))
        b = Robot(robot_id=1, position=Point(3, 4))
        a.position = Point(9, 9)
        assert b.position == Point(3, 4)
        assert a.phase is Phase.IDLE

    def test_move_metadata_hidden_outside_move_phase(self):
        robot = Robot(robot_id=0, position=Point(0, 0))
        assert robot.move_origin is None and robot.move_destination is None
        robot.begin_activation(0.0)
        robot.begin_move((0, 0), (1, 0), 0.0, 1.0)
        assert robot.move_origin == Point(0, 0)
        assert robot.move_destination == Point(1, 0)
        robot.finish_move()
        assert robot.move_origin is None and robot.move_destination is None

    def test_view_classmethod(self):
        arrays = KinematicArrays.from_positions([(0, 0), (7, 7)])
        view = Robot.view(arrays, 1)
        assert view.robot_id == 1
        assert view.position == Point(7, 7)


class TestDimensionGenericArrays:
    """KinematicArrays at d != 2: same batched interpolation machinery."""

    def test_from_array_3d(self):
        positions = np.array([[0.0, 1.0, 2.0], [3.0, 4.0, 5.0]])
        arrays = KinematicArrays.from_array(positions)
        assert arrays.n == 2 and arrays.dim == 3
        assert arrays.position.shape == (2, 3)
        assert np.array_equal(arrays.position, positions)

    def test_from_array_rejects_flat_input(self):
        with pytest.raises(ValueError):
            KinematicArrays.from_array(np.zeros(6))

    def test_interpolation_is_dimension_generic(self):
        arrays = KinematicArrays(3, dim=3)
        arrays.position[:] = [(0, 0, 0), (1, 1, 1), (2, 2, 2)]
        # Row 1 moves to (2, 3, 5) over t in [0, 2].
        arrays.move_origin[1] = (1, 1, 1)
        arrays.move_destination[1] = (2, 3, 5)
        arrays.move_start[1] = 0.0
        arrays.move_end[1] = 2.0
        arrays.phase[1] = 2  # PHASE_MOVING
        mid = arrays.positions_at(1.0)
        assert np.array_equal(mid[0], [0, 0, 0])
        assert np.array_equal(mid[1], [1.5, 2.0, 3.0])
        assert np.array_equal(mid[2], [2, 2, 2])
        done = arrays.positions_at(5.0)
        assert np.array_equal(done[1], [2, 3, 5])
        assert arrays.completed_movers(2.0).tolist() == [1]

    def test_robot_views_are_planar_only(self):
        arrays = KinematicArrays(2, dim=3)
        with pytest.raises(ValueError):
            Robot.view(arrays, 0)
