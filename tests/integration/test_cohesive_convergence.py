"""End-to-end integration tests: cohesive convergence across scheduler classes.

These tests exercise the full stack (workload generator -> scheduler ->
algorithm -> simulator -> metrics) on multi-robot runs and assert the
paper's positive results: the algorithm converges and preserves every
initial visibility edge under every bounded-asynchrony scheduler class.
"""

import pytest

from repro.algorithms import AndoAlgorithm, KKNPSAlgorithm
from repro.engine import SimulationConfig, run_simulation
from repro.schedulers import (
    FSyncScheduler,
    KAsyncScheduler,
    KNestAScheduler,
    SSyncScheduler,
)
from repro.workloads import (
    clustered_configuration,
    grid_configuration,
    line_configuration,
    random_connected_configuration,
    ring_configuration,
)


def run_kknps(configuration, scheduler, *, k, max_activations=20000, epsilon=0.05, seed=0):
    return run_simulation(
        configuration.positions,
        KKNPSAlgorithm(k=k),
        scheduler,
        SimulationConfig(
            max_activations=max_activations,
            convergence_epsilon=epsilon,
            seed=seed,
            k_bound=k,
        ),
    )


class TestSchedulerClasses:
    def test_fsync(self):
        result = run_kknps(random_connected_configuration(8, seed=1), FSyncScheduler(), k=1)
        assert result.converged and result.cohesion_maintained

    def test_ssync(self):
        result = run_kknps(random_connected_configuration(8, seed=2), SSyncScheduler(), k=1)
        assert result.converged and result.cohesion_maintained

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_k_async(self, k):
        result = run_kknps(
            random_connected_configuration(8, seed=3 + k), KAsyncScheduler(k=k), k=k
        )
        assert result.converged and result.cohesion_maintained

    @pytest.mark.parametrize("k", [1, 3])
    def test_k_nesta(self, k):
        result = run_kknps(
            random_connected_configuration(8, seed=10 + k), KNestAScheduler(k=k), k=k
        )
        assert result.converged and result.cohesion_maintained


class TestWorkloadShapes:
    @pytest.mark.parametrize(
        "configuration",
        [
            line_configuration(6, spacing=0.7),
            grid_configuration(3, 3, spacing=0.6),
            ring_configuration(8),
            clustered_configuration(2, 4, seed=5),
        ],
        ids=["line", "grid", "ring", "clusters"],
    )
    def test_kknps_converges_on_every_shape(self, configuration):
        result = run_kknps(configuration, KAsyncScheduler(k=2), k=2, seed=7)
        assert result.converged
        assert result.cohesion_maintained

    def test_hull_diameter_is_monotone_along_the_run(self):
        configuration = random_connected_configuration(10, seed=9)
        result = run_kknps(configuration, KAsyncScheduler(k=2), k=2, seed=9)
        assert result.metrics.monotone_hull_diameter(tolerance=1e-7)

    def test_ando_matches_kknps_under_ssync(self):
        configuration = random_connected_configuration(8, seed=11)
        ando = run_simulation(
            configuration.positions,
            AndoAlgorithm(),
            SSyncScheduler(),
            SimulationConfig(max_activations=20000, convergence_epsilon=0.05, seed=11),
        )
        kknps = run_kknps(configuration, SSyncScheduler(), k=1, seed=11)
        assert ando.converged and ando.cohesion_maintained
        assert kknps.converged and kknps.cohesion_maintained


class TestScaleAndSeeds:
    @pytest.mark.parametrize("seed", range(4))
    def test_many_seeds_small_swarm(self, seed):
        result = run_kknps(
            random_connected_configuration(6, seed=seed), KAsyncScheduler(k=2), k=2, seed=seed
        )
        assert result.converged and result.cohesion_maintained

    def test_larger_swarm(self):
        result = run_kknps(
            random_connected_configuration(25, seed=100),
            KAsyncScheduler(k=2),
            k=2,
            max_activations=60000,
            epsilon=0.1,
            seed=100,
        )
        assert result.converged
        assert result.cohesion_maintained
