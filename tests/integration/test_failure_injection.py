"""Integration tests for fault injection and error models on full runs."""

import pytest

from repro.algorithms import KKNPSAlgorithm
from repro.engine import SimulationConfig, run_simulation
from repro.geometry import SymmetricDistortion
from repro.model import MotionModel, PerceptionModel
from repro.schedulers import KAsyncScheduler, SSyncScheduler
from repro.workloads import line_configuration, random_connected_configuration


class TestCrashFaults:
    def test_single_crash_is_tolerated(self):
        # Section 6.1: with one fail-stop fault the remaining robots converge
        # to the crashed robot's location.
        configuration = line_configuration(5, spacing=0.6)
        crashed_position = configuration.positions[2]
        result = run_simulation(
            configuration.positions,
            KKNPSAlgorithm(k=1),
            SSyncScheduler(),
            SimulationConfig(
                max_activations=20000, convergence_epsilon=0.03, crashed_robots=(2,), seed=0
            ),
        )
        assert result.converged
        assert result.cohesion_maintained
        assert result.final_configuration[2].is_close(crashed_position)
        for position in result.final_configuration.positions:
            assert position.distance_to(crashed_position) <= 0.03 + 1e-9

    def test_all_crashed_robots_freeze_the_system(self):
        configuration = line_configuration(3, spacing=0.5)
        result = run_simulation(
            configuration.positions,
            KKNPSAlgorithm(k=1),
            SSyncScheduler(),
            SimulationConfig(
                max_activations=50, convergence_epsilon=1e-6, stop_at_convergence=False,
                crashed_robots=(0, 1, 2),
            ),
        )
        for initial, final in zip(configuration.positions, result.final_configuration.positions):
            assert initial.is_close(final)


class TestErrorModels:
    def test_nonrigid_motion_with_adversarial_fractions(self):
        configuration = random_connected_configuration(8, seed=3)
        result = run_simulation(
            configuration.positions,
            KKNPSAlgorithm(k=2),
            KAsyncScheduler(k=2, progress_fraction=(0.2, 0.4)),
            SimulationConfig(
                max_activations=40000, convergence_epsilon=0.05,
                motion=MotionModel(xi=0.2), seed=3, k_bound=2,
            ),
        )
        assert result.converged
        assert result.cohesion_maintained

    def test_distance_error_beyond_tolerance_can_still_be_run(self):
        # The engine must not crash even when the algorithm is not tuned for
        # the injected error; cohesion is not asserted here, only that the
        # run completes and produces sane metrics.
        configuration = random_connected_configuration(6, seed=4)
        result = run_simulation(
            configuration.positions,
            KKNPSAlgorithm(k=1),
            SSyncScheduler(),
            SimulationConfig(
                max_activations=2000, convergence_epsilon=0.05,
                perception=PerceptionModel(distance_error=0.2, bias="over"), seed=4,
            ),
        )
        assert result.activations_processed > 0
        assert result.final_hull_diameter >= 0.0

    def test_combined_error_models_with_tolerant_algorithm(self):
        configuration = random_connected_configuration(8, seed=5)
        result = run_simulation(
            configuration.positions,
            KKNPSAlgorithm(k=2, distance_error_tolerance=0.05, skew_tolerance=0.08),
            KAsyncScheduler(k=2, progress_fraction=(0.5, 1.0)),
            SimulationConfig(
                max_activations=40000, convergence_epsilon=0.05,
                perception=PerceptionModel(
                    distance_error=0.05,
                    distortion=SymmetricDistortion(amplitude=0.08, frequency=2),
                ),
                motion=MotionModel(xi=0.5, deviation="quadratic", coefficient=0.1),
                seed=5, k_bound=2,
            ),
        )
        assert result.converged
        assert result.cohesion_maintained

    def test_reflected_frames_do_not_matter(self):
        configuration = random_connected_configuration(7, seed=6)
        with_reflection = run_simulation(
            configuration.positions, KKNPSAlgorithm(k=1), SSyncScheduler(),
            SimulationConfig(max_activations=15000, convergence_epsilon=0.05,
                             allow_reflection=True, seed=6),
        )
        without_frames = run_simulation(
            configuration.positions, KKNPSAlgorithm(k=1), SSyncScheduler(),
            SimulationConfig(max_activations=15000, convergence_epsilon=0.05,
                             use_random_frames=False, seed=6),
        )
        assert with_reflection.converged and without_frames.converged
        assert with_reflection.cohesion_maintained and without_frames.cohesion_maintained
