"""Tests for the FSync and SSync schedulers."""

import numpy as np
import pytest

from repro.model import SchedulerClass
from repro.schedulers import FSyncScheduler, SSyncScheduler


class TestFSync:
    def test_every_robot_every_round(self):
        scheduler = FSyncScheduler()
        scheduler.reset(4, np.random.default_rng(0))
        for round_index in range(3):
            batch = scheduler.next_batch()
            assert sorted(a.robot_id for a in batch) == [0, 1, 2, 3]
            assert all(a.look_time == float(round_index) for a in batch)

    def test_cycle_fits_inside_round(self):
        scheduler = FSyncScheduler()
        scheduler.reset(2, np.random.default_rng(0))
        batch = scheduler.next_batch()
        assert all(a.end_time < a.look_time + 1.0 for a in batch)

    def test_invalid_move_duration(self):
        with pytest.raises(ValueError):
            FSyncScheduler(move_duration=1.5)

    def test_scheduler_class(self):
        assert FSyncScheduler().scheduler_class is SchedulerClass.FSYNC

    def test_reset_requires_robots(self):
        with pytest.raises(ValueError):
            FSyncScheduler().reset(0)


class TestSSync:
    def test_rounds_are_never_empty(self):
        scheduler = SSyncScheduler(activation_probability=0.01, max_lag=1000)
        scheduler.reset(5, np.random.default_rng(1))
        for _ in range(20):
            assert scheduler.next_batch()

    def test_fairness_forces_lagging_robots(self):
        scheduler = SSyncScheduler(activation_probability=0.3, max_lag=4)
        scheduler.reset(6, np.random.default_rng(2))
        last_seen = {i: -1 for i in range(6)}
        for round_index in range(60):
            for activation in scheduler.next_batch():
                last_seen[activation.robot_id] = round_index
        # Every robot was activated within the last max_lag + 1 rounds.
        assert all(59 - seen <= 5 for seen in last_seen.values())

    def test_at_most_one_activation_per_robot_per_round(self):
        scheduler = SSyncScheduler(activation_probability=0.9)
        scheduler.reset(8, np.random.default_rng(3))
        for _ in range(10):
            batch = scheduler.next_batch()
            ids = [a.robot_id for a in batch]
            assert len(ids) == len(set(ids))

    def test_rounds_advance_in_time(self):
        scheduler = SSyncScheduler()
        scheduler.reset(3, np.random.default_rng(4))
        times = [scheduler.next_batch()[0].look_time for _ in range(5)]
        assert times == sorted(times)
        assert len(set(times)) == 5

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SSyncScheduler(activation_probability=0.0)
        with pytest.raises(ValueError):
            SSyncScheduler(max_lag=0)
        with pytest.raises(ValueError):
            SSyncScheduler(move_duration=1.0)

    def test_describe(self):
        assert "ssync" in SSyncScheduler().describe()
