"""Tests for scripted schedules and the timeline validators."""

import numpy as np
import pytest

from repro.model import Activation
from repro.schedulers import FSyncScheduler, ScriptedScheduler, validate_k_async, validate_k_nesta


def make_script():
    return [
        Activation(robot_id=0, look_time=0.0, compute_duration=0.1, move_duration=0.2),
        Activation(robot_id=1, look_time=0.1, compute_duration=0.1, move_duration=5.0),
        Activation(robot_id=0, look_time=1.0, compute_duration=0.1, move_duration=0.2),
    ]


class TestScriptedScheduler:
    def test_replays_in_time_order(self):
        scheduler = ScriptedScheduler(make_script())
        scheduler.reset(2, np.random.default_rng(0))
        replayed = []
        while True:
            batch = scheduler.next_batch()
            if not batch:
                break
            replayed.extend(batch)
        assert [a.look_time for a in replayed] == [0.0, 0.1, 1.0]
        assert [a.robot_id for a in replayed] == [0, 1, 0]

    def test_unsorted_input_is_sorted(self):
        script = list(reversed(make_script()))
        scheduler = ScriptedScheduler(script)
        scheduler.reset(2, np.random.default_rng(0))
        first = scheduler.next_batch()[0]
        assert first.look_time == 0.0

    def test_overlapping_same_robot_rejected(self):
        with pytest.raises(ValueError):
            ScriptedScheduler(
                [
                    Activation(robot_id=0, look_time=0.0, move_duration=2.0),
                    Activation(robot_id=0, look_time=1.0, move_duration=1.0),
                ]
            )

    def test_exhausted_without_continuation(self):
        scheduler = ScriptedScheduler(make_script()[:1])
        scheduler.reset(1, np.random.default_rng(0))
        assert scheduler.next_batch()
        assert scheduler.next_batch() == []

    def test_continuation_is_offset_after_script(self):
        scheduler = ScriptedScheduler(
            make_script(), continuation=FSyncScheduler(), continuation_offset=2.0
        )
        scheduler.reset(2, np.random.default_rng(0))
        for _ in range(3):
            scheduler.next_batch()
        continuation_batch = scheduler.next_batch()
        assert continuation_batch
        script_end = max(a.end_time for a in make_script())
        assert all(a.look_time >= script_end + 2.0 - 1e-12 for a in continuation_batch)

    def test_script_end_time(self):
        scheduler = ScriptedScheduler(make_script())
        assert scheduler.script_end_time() == pytest.approx(5.2)

    def test_describe(self):
        assert "3" in ScriptedScheduler(make_script()).describe()


class TestValidators:
    def test_k_async_validator_counts_starts(self):
        script = [
            Activation(robot_id=0, look_time=0.0, move_duration=10.0),
            Activation(robot_id=1, look_time=1.0, move_duration=0.5),
            Activation(robot_id=1, look_time=2.0, move_duration=0.5),
        ]
        assert not validate_k_async(script, 1)
        assert validate_k_async(script, 2)

    def test_activation_starting_before_interval_does_not_count(self):
        script = [
            Activation(robot_id=0, look_time=0.0, move_duration=0.5),
            Activation(robot_id=1, look_time=0.2, move_duration=10.0),
            Activation(robot_id=0, look_time=1.0, move_duration=0.5),
        ]
        # Only robot 0's second activation starts within robot 1's interval.
        assert validate_k_async(script, 1)

    def test_nesta_validator_rejects_proper_overlap(self):
        script = [
            Activation(robot_id=0, look_time=0.0, move_duration=2.0),
            Activation(robot_id=1, look_time=1.0, move_duration=2.0),
        ]
        assert not validate_k_nesta(script, 5)
        assert validate_k_async(script, 5)

    def test_nesta_validator_accepts_nested_and_counts(self):
        script = [
            Activation(robot_id=0, look_time=0.0, move_duration=10.0),
            Activation(robot_id=1, look_time=1.0, move_duration=1.0),
            Activation(robot_id=1, look_time=3.0, move_duration=1.0),
        ]
        assert validate_k_nesta(script, 2)
        assert not validate_k_nesta(script, 1)
