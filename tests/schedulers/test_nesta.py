"""Tests for the k-NestA scheduler."""

import numpy as np
import pytest

from repro.schedulers import KNestAScheduler
from repro.schedulers.scripted import validate_k_async, validate_k_nesta


def drain(scheduler, n_robots, batches, seed=0):
    scheduler.reset(n_robots, np.random.default_rng(seed))
    activations = []
    for _ in range(batches):
        activations.extend(scheduler.next_batch())
    return activations


class TestKNestA:
    def test_validation(self):
        with pytest.raises(ValueError):
            KNestAScheduler(k=0)
        with pytest.raises(ValueError):
            KNestAScheduler(nested_robot_fraction=1.5)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_intervals_are_disjoint_or_nested_with_bound(self, k):
        activations = drain(KNestAScheduler(k=k), n_robots=5, batches=30, seed=k)
        assert validate_k_nesta(activations, k)

    def test_one_nesta_is_not_necessarily_valid_for_zero_nesting(self):
        activations = drain(KNestAScheduler(k=2), n_robots=4, batches=40, seed=7)
        # Sanity: the schedule uses nesting at all (some interval contains another).
        nested_found = any(
            a.contains(b)
            for a in activations
            for b in activations
            if a is not b and a.robot_id != b.robot_id
        )
        assert nested_found

    def test_batches_advance_in_time(self):
        scheduler = KNestAScheduler(k=2)
        scheduler.reset(4, np.random.default_rng(1))
        previous_end = -1.0
        for _ in range(10):
            batch = scheduler.next_batch()
            start = min(a.look_time for a in batch)
            assert start >= previous_end - 1e-12
            previous_end = max(a.end_time for a in batch)

    def test_batch_is_sorted_by_look_time(self):
        scheduler = KNestAScheduler(k=3)
        scheduler.reset(5, np.random.default_rng(2))
        for _ in range(10):
            batch = scheduler.next_batch()
            times = [a.look_time for a in batch]
            assert times == sorted(times)

    def test_per_robot_activations_do_not_overlap(self):
        activations = drain(KNestAScheduler(k=3), n_robots=5, batches=40, seed=3)
        per_robot = {}
        for a in activations:
            per_robot.setdefault(a.robot_id, []).append(a)
        for robot_activations in per_robot.values():
            ordered = sorted(robot_activations, key=lambda a: a.look_time)
            for earlier, later in zip(ordered, ordered[1:]):
                assert later.look_time >= earlier.end_time - 1e-12

    def test_fairness_every_robot_eventually_activated(self):
        activations = drain(KNestAScheduler(k=1), n_robots=6, batches=80, seed=4)
        activated = {a.robot_id for a in activations}
        assert activated == set(range(6))

    def test_nested_schedules_also_satisfy_k_async(self):
        # Every k-NestA schedule is in particular a k-Async schedule.
        activations = drain(KNestAScheduler(k=2), n_robots=4, batches=30, seed=5)
        assert validate_k_async(activations, 2)

    def test_describe(self):
        assert KNestAScheduler(k=4).describe() == "4-nesta"
