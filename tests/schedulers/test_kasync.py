"""Tests for the k-Async and Async schedulers."""

import numpy as np
import pytest

from repro.model import Activation, SchedulerClass
from repro.schedulers import AsyncScheduler, KAsyncScheduler, StalledAsyncScheduler
from repro.schedulers.scripted import validate_k_async


def drain(scheduler, n_robots, count, seed=0):
    scheduler.reset(n_robots, np.random.default_rng(seed))
    activations = []
    while len(activations) < count:
        batch = scheduler.next_batch()
        if not batch:
            break
        activations.extend(batch)
    return activations


class TestKAsync:
    def test_validation(self):
        with pytest.raises(ValueError):
            KAsyncScheduler(k=0)

    def test_issued_in_nondecreasing_time_order(self):
        activations = drain(KAsyncScheduler(k=2), n_robots=5, count=100)
        times = [a.look_time for a in activations]
        assert times == sorted(times)

    def test_per_robot_activations_do_not_overlap(self):
        activations = drain(KAsyncScheduler(k=3), n_robots=4, count=120)
        per_robot = {}
        for a in activations:
            per_robot.setdefault(a.robot_id, []).append(a)
        for robot_activations in per_robot.values():
            for earlier, later in zip(robot_activations, robot_activations[1:]):
                assert later.look_time >= earlier.end_time - 1e-12

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_k_bound_is_respected(self, k):
        activations = drain(KAsyncScheduler(k=k), n_robots=4, count=150, seed=k)
        assert validate_k_async(activations, k)

    def test_one_async_is_strictly_tighter_than_three(self):
        # A 1-Async schedule trivially validates as 3-Async but not necessarily
        # the other way round; here we just confirm the validator ordering.
        activations = drain(KAsyncScheduler(k=1), n_robots=3, count=60)
        assert validate_k_async(activations, 1)
        assert validate_k_async(activations, 3)

    def test_fairness_every_robot_is_activated(self):
        scheduler = KAsyncScheduler(k=2)
        drain(scheduler, n_robots=6, count=200)
        counts = scheduler.activation_counts()
        assert all(count > 5 for count in counts.values())

    def test_progress_fraction_range(self):
        scheduler = KAsyncScheduler(k=1, progress_fraction=(0.5, 0.8))
        activations = drain(scheduler, n_robots=3, count=50)
        assert all(0.5 <= a.progress_fraction <= 0.8 for a in activations)

    def test_describe(self):
        assert KAsyncScheduler(k=3).describe() == "3-async"
        assert AsyncScheduler().describe() == "async"


class TestAsync:
    def test_async_has_no_bound(self):
        scheduler = AsyncScheduler()
        assert scheduler.k is None
        assert scheduler.scheduler_class is SchedulerClass.ASYNC

    def test_async_generates_valid_interleavings(self):
        activations = drain(AsyncScheduler(), n_robots=4, count=100)
        times = [a.look_time for a in activations]
        assert times == sorted(times)
        # Per-robot intervals still never overlap themselves.
        per_robot = {}
        for a in activations:
            per_robot.setdefault(a.robot_id, []).append(a)
        for robot_activations in per_robot.values():
            for earlier, later in zip(robot_activations, robot_activations[1:]):
                assert later.look_time >= earlier.end_time - 1e-12


class TestStalledAsync:
    def test_stalled_robot_has_long_intervals(self):
        scheduler = StalledAsyncScheduler(stalled_robot=0, stall_duration=500.0)
        activations = drain(scheduler, n_robots=3, count=60)
        stalled = [a for a in activations if a.robot_id == 0]
        others = [a for a in activations if a.robot_id != 0]
        assert stalled
        assert all(a.end_time - a.look_time >= 500.0 - 1e-9 for a in stalled)
        assert any(a.end_time - a.look_time < 100.0 for a in others)

    def test_many_other_activations_fit_inside_a_stalled_interval(self):
        scheduler = StalledAsyncScheduler(stalled_robot=0, stall_duration=200.0)
        activations = drain(scheduler, n_robots=3, count=200)
        stalled = [a for a in activations if a.robot_id == 0][0]
        nested = [
            a for a in activations
            if a.robot_id != 0 and stalled.look_time <= a.look_time < stalled.end_time
        ]
        assert len(nested) > 5
