"""Tier-1 enforcement of the documentation's link integrity.

CI also runs ``tools/check_doc_links.py`` directly; this test makes the
same guarantee part of every local test run, so a page rename cannot
leave dangling links behind.
"""

from __future__ import annotations

import sys
from pathlib import Path

_TOOLS = Path(__file__).resolve().parent.parent / "tools"
if str(_TOOLS) not in sys.path:
    sys.path.insert(0, str(_TOOLS))

import check_doc_links  # noqa: E402


def test_every_relative_doc_link_resolves():
    assert check_doc_links.broken_links() == []


def test_checker_covers_the_front_door_and_docs():
    covered = {path.name for path in check_doc_links.markdown_files()}
    assert "README.md" in covered
    assert "architecture.md" in covered
    assert "spatial3d.md" in covered
    assert "sweeps.md" in covered
    assert "engine-performance.md" in covered
