"""Fault-injection tests for the churn-tolerant socket backend.

The contract under test: killing one of N >= 2 workers mid-chunk loses
zero rows (the leased chunk is requeued and re-executed bit-identically),
heartbeat silence beyond ``lost_after_s`` counts as a loss, workers
started out-of-band join a running sweep (gated by the auth token), and
protocol violations are reported as named errors instead of bare
``KeyError``s.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import signal
import socket as socket_module
import threading
import time

import pytest

from repro.sweeps import SweepSpec
from repro.sweeps.backends import SocketProtocolError, WorkerHealth
from repro.sweeps.backends.socket_backend import (
    SocketBackend,
    _ChunkLedger,
    heartbeat_expired,
    recv_frame,
    send_frame,
    worker_main,
)
from repro.sweeps.runner import execute_run, strip_timing

#: A small grid of real runs (12 runs; each well under a second).
SMALL_SPEC = SweepSpec(
    algorithms=("kknps",),
    schedulers=("ssync", "k-async"),
    workloads=("line", "blobs"),
    n_robots=(5,),
    seeds=(0, 1, 2),
    scheduler_k=2,
    epsilon=0.08,
    max_activations=150,
)


def _kill_once_run_fn(spec):
    """Execute the real run — but SIGKILL the worker the first time the
    designated spec is reached (a marker file records that the kill already
    fired, so the re-executed chunk runs through normally)."""
    marker = os.environ["REPRO_TEST_KILL_MARKER"]
    if (
        spec.workload == "blobs"
        and spec.seed == 1
        and spec.scheduler == "ssync"
        and not os.path.exists(marker)
    ):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)
    return execute_run(spec)


def _slow_real_run_fn(spec):
    """The real run slowed down enough for mid-sweep events to land."""
    row = execute_run(spec)
    time.sleep(0.15)
    return row


def _consume_in_thread(backend, specs):
    """Drive ``backend.execute`` in a thread; returns (thread, rows dict)."""
    rows = {}

    def consume():
        for run_key, row in backend.execute(specs):
            rows[run_key] = row

    thread = threading.Thread(target=consume, daemon=True)
    thread.start()
    return thread, rows


def _wait_for_port(backend, timeout=10.0):
    deadline = time.monotonic() + timeout
    while backend.bound_port is None and time.monotonic() < deadline:
        time.sleep(0.01)
    assert backend.bound_port is not None, "coordinator never bound its port"
    return backend.bound_port


class TestChunkLedger:
    def test_lease_requeue_complete_cycle(self):
        ledger = _ChunkLedger([["a"], ["b"], ["c"]])
        assert ledger.outstanding() == 3
        assert ledger.acquire() == (0, ["a"])
        # A requeued chunk keeps its id and returns to the front.
        ledger.requeue(0)
        assert ledger.outstanding() == 3
        assert ledger.acquire() == (0, ["a"])
        ledger.complete(0)
        assert ledger.outstanding() == 2
        assert ledger.acquire() == (1, ["b"])
        assert ledger.acquire() == (2, ["c"])
        assert ledger.acquire() is None
        ledger.complete(1)
        ledger.complete(2)
        assert ledger.outstanding() == 0


class TestHeartbeatLossDetection:
    def test_expiry_with_a_fake_clock(self):
        health = WorkerHealth(worker_id="sock-7")
        health.observe_heartbeat(100.0)
        assert health.heartbeat_age_s(102.0) == pytest.approx(2.0)
        assert not heartbeat_expired(health, 100.5, lost_after_s=1.0)
        assert not heartbeat_expired(health, 101.0, lost_after_s=1.0)
        assert heartbeat_expired(health, 101.01, lost_after_s=1.0)
        # A later beat resets the clock.
        health.observe_heartbeat(103.0)
        assert not heartbeat_expired(health, 103.9, lost_after_s=1.0)
        # A record that never beat is not expired (admission always beats).
        assert not heartbeat_expired(
            WorkerHealth(worker_id="sock-8"), 1e9, lost_after_s=1.0
        )

    def test_silent_worker_is_lost_and_its_chunk_requeued(self):
        """A worker that takes a task and goes silent (no heartbeats, no
        result) is declared lost after ``lost_after_s``; its chunk is
        requeued and the sweep still completes with every row."""
        specs = SMALL_SPEC.expand()[:6]
        backend = SocketBackend(
            workers=1,
            run_fn=_slow_real_run_fn,
            lost_after_s=0.6,
            heartbeat_interval=0.1,
        )
        thread, rows = _consume_in_thread(backend, specs)
        port = _wait_for_port(backend)
        # A fake worker: says hello, takes one task, then wedges silently.
        wedge = socket_module.create_connection(("127.0.0.1", port))
        wedge.settimeout(20.0)
        try:
            send_frame(wedge, {"type": "hello", "worker": 55})
            task = recv_frame(wedge)
            assert task["type"] == "task"
            thread.join(timeout=90)
            assert not thread.is_alive()
        finally:
            wedge.close()
        assert len(rows) == len(specs)
        stats = backend.stats()
        assert stats.worker_losses == 1
        assert stats.requeued_chunks == 1
        lost = [w for w in stats.worker_health if w.lost]
        assert [w.worker_id for w in lost] == ["sock-55"]
        assert "worker_losses=1" in stats.summary()
        assert "/LOST" in stats.summary()


class TestWorkerKilledMidChunk:
    def test_sigkill_loses_zero_rows_and_matches_serial(self, tmp_path, monkeypatch):
        """The acceptance scenario: one of two workers SIGKILLs itself in
        the middle of a chunk; the sweep finishes with all rows present and
        bit-identical to serial (timing fields aside), and stats report the
        loss and the requeued chunk."""
        specs = SMALL_SPEC.expand()
        marker = tmp_path / "killed"
        monkeypatch.setenv("REPRO_TEST_KILL_MARKER", str(marker))
        backend = SocketBackend(workers=2, run_fn=_kill_once_run_fn)
        rows = dict(backend.execute(specs))
        assert marker.exists(), "the kill never fired"
        assert len(rows) == len(specs)
        serial = {spec.run_key: execute_run(spec) for spec in specs}
        assert {k: strip_timing(r) for k, r in rows.items()} == {
            k: strip_timing(r) for k, r in serial.items()
        }
        stats = backend.stats()
        assert stats.runs == len(specs)
        assert stats.worker_losses == 1
        assert stats.requeued_chunks == 1
        assert sum(1 for w in stats.worker_health if w.lost) == 1
        # The survivor was not aborted by its peer's death (the old
        # pre-connect-death budget bug) and did real work.
        survivors = [w for w in stats.worker_health if not w.lost]
        assert survivors and all(w.runs > 0 for w in survivors)
        assert "worker_losses=1" in stats.summary()

    def test_all_workers_dead_before_connecting_raises(self, monkeypatch):
        """Bootstrap failure of every worker is still a hard error — but
        counted per process that never connected, not against survivors."""
        from repro.sweeps.backends import socket_backend as sb

        monkeypatch.setattr(sb, "worker_main", _doomed_worker)
        backend = SocketBackend(workers=2, run_fn=_slow_real_run_fn)
        with pytest.raises(RuntimeError, match="died before connecting"):
            list(backend.execute(SMALL_SPEC.expand()[:2]))

    def test_losing_every_live_worker_fails_the_sweep(self, tmp_path, monkeypatch):
        """With a single worker and no joiners, a mid-chunk death leaves
        zero live workers with chunks outstanding: the sweep fails loudly
        instead of hanging."""
        specs = SMALL_SPEC.expand()[:6]
        marker = tmp_path / "killed"
        monkeypatch.setenv("REPRO_TEST_KILL_MARKER", str(marker))
        backend = SocketBackend(workers=1, run_fn=_kill_once_run_fn)
        with pytest.raises(RuntimeError, match="all socket workers lost"):
            list(backend.execute(specs))


def _doomed_worker(*args, **kwargs):
    os._exit(3)


class TestLateJoiners:
    def test_out_of_band_worker_joins_a_running_sweep(self):
        """A worker_main started after the sweep begins (with the right
        token) is admitted and executes at least one chunk."""
        specs = SMALL_SPEC.expand()
        backend = SocketBackend(
            workers=1, run_fn=_slow_real_run_fn, token="s3cret"
        )
        thread, rows = _consume_in_thread(backend, specs)
        port = _wait_for_port(backend)
        context = multiprocessing.get_context()
        joiner = context.Process(
            target=worker_main,
            args=("127.0.0.1", port, 99, _slow_real_run_fn),
            kwargs={"token": "s3cret"},
            daemon=True,
        )
        joiner.start()
        try:
            thread.join(timeout=120)
            assert not thread.is_alive()
        finally:
            joiner.join(timeout=10)
            if joiner.is_alive():
                joiner.terminate()
        assert len(rows) == len(specs)
        health = {w.worker_id: w for w in backend.stats().worker_health}
        assert "sock-99" in health
        assert health["sock-99"].runs >= 1
        assert not health["sock-99"].lost
        assert backend.stats().worker_losses == 0

    def test_wrong_token_is_rejected_without_aborting(self):
        """An impostor with the wrong token gets no work and the sweep
        completes on the legitimate worker alone."""
        specs = SMALL_SPEC.expand()[:4]
        backend = SocketBackend(
            workers=1, run_fn=_slow_real_run_fn, token="right"
        )
        thread, rows = _consume_in_thread(backend, specs)
        port = _wait_for_port(backend)
        context = multiprocessing.get_context()
        impostor = context.Process(
            target=worker_main,
            args=("127.0.0.1", port, 77, _slow_real_run_fn),
            kwargs={"token": "wrong"},
            daemon=True,
        )
        with pytest.warns(UserWarning, match="auth token"):
            impostor.start()
            thread.join(timeout=90)
            assert not thread.is_alive()
        impostor.join(timeout=10)
        assert len(rows) == len(specs)
        names = {w.worker_id for w in backend.stats().worker_health}
        assert "sock-77" not in names
        assert names == {"sock-0"}


class TestProtocolValidation:
    """Satellite: a malformed frame raises a named protocol error, not a
    bare ``KeyError`` on ``frame["rows"]``."""

    def _serve(self, backend):
        ledger = _ChunkLedger(
            [[spec.to_dict() for spec in SMALL_SPEC.expand()[:1]]]
        )
        results = queue.Queue()
        server, client = socket_module.socketpair()
        thread = threading.Thread(
            target=backend._serve_connection,
            args=(server, ledger, results),
            daemon=True,
        )
        thread.start()
        return ledger, results, client, thread

    def test_unknown_frame_type_names_type_and_worker(self):
        backend = SocketBackend(workers=1, run_fn=_slow_real_run_fn)
        _ledger, results, client, thread = self._serve(backend)
        try:
            send_frame(client, {"type": "hello", "worker": 7})
            task = recv_frame(client)
            assert task["type"] == "task"
            send_frame(client, {"type": "banana", "worker": 7})
            item = results.get(timeout=10)
        finally:
            client.close()
            thread.join(timeout=5)
        assert isinstance(item, SocketProtocolError)
        assert "banana" in str(item)
        assert "sock-7" in str(item)

    def test_result_for_wrong_chunk_is_a_protocol_error(self):
        backend = SocketBackend(workers=1, run_fn=_slow_real_run_fn)
        _ledger, results, client, thread = self._serve(backend)
        try:
            send_frame(client, {"type": "hello", "worker": 3})
            task = recv_frame(client)
            send_frame(
                client,
                {
                    "type": "result",
                    "worker": 3,
                    "chunk_id": task["chunk_id"] + 41,
                    "rows": [],
                    "busy_s": 0.0,
                },
            )
            item = results.get(timeout=10)
        finally:
            client.close()
            thread.join(timeout=5)
        assert isinstance(item, SocketProtocolError)
        assert "chunk" in str(item)
        assert "sock-3" in str(item)

    def test_wrong_token_connection_closed_without_work(self):
        backend = SocketBackend(
            workers=1, token="right", run_fn=_slow_real_run_fn
        )
        ledger, results, client, thread = self._serve(backend)
        with pytest.warns(UserWarning, match="auth token"):
            send_frame(client, {"type": "hello", "worker": 9, "token": "wrong"})
            thread.join(timeout=10)
        assert not thread.is_alive()
        # No chunk was leased, nothing was reported, the socket is closed.
        assert ledger.outstanding() == 1
        assert results.empty()
        client.settimeout(5.0)
        assert client.recv(1) == b""
        client.close()

    def test_garbage_before_hello_does_not_abort(self):
        backend = SocketBackend(workers=1, run_fn=_slow_real_run_fn)
        _ledger, results, client, thread = self._serve(backend)
        with pytest.warns(UserWarning, match="not 'hello'"):
            send_frame(client, {"type": "result", "rows": []})
            thread.join(timeout=10)
        assert not thread.is_alive()
        assert results.empty()
        client.close()
