"""Tests for the ``python -m repro sweep`` subcommand."""

from __future__ import annotations

import json

from repro.__main__ import main as repro_main
from repro.sweeps.cli import build_parser, main as sweep_main, smoke_spec


class TestSweepCli:
    def test_tiny_grid_prints_aggregate_and_persists(self, tmp_path, capsys):
        out = tmp_path / "rows.jsonl"
        code = sweep_main(
            [
                "--algorithms", "kknps",
                "--schedulers", "ssync",
                "--workloads", "line",
                "--n", "5",
                "--seeds", "2",
                "--max-activations", "120",
                "--epsilon", "0.1",
                "--out", str(out),
                "--quiet",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "Sweep aggregate" in captured
        assert str(out) in captured
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(rows) == 2
        assert all(row["algorithm"] == "kknps" for row in rows)

    def test_resume_through_cli(self, tmp_path, capsys):
        out = tmp_path / "rows.jsonl"
        argv = [
            "--algorithms", "kknps", "--schedulers", "ssync", "--workloads", "line",
            "--n", "5", "--seeds", "2", "--max-activations", "120", "--quiet",
            "--out", str(out),
        ]
        assert sweep_main(argv) == 0
        capsys.readouterr()
        assert sweep_main(argv) == 0
        assert "0 rows appended" in capsys.readouterr().out
        assert len(out.read_text().splitlines()) == 2

    def test_dispatch_from_repro_main(self, tmp_path, capsys):
        code = repro_main(
            ["sweep", "--algorithms", "ando", "--schedulers", "fsync",
             "--workloads", "line", "--n", "4", "--seeds", "1",
             "--max-activations", "80", "--quiet"]
        )
        assert code == 0
        assert "Sweep aggregate" in capsys.readouterr().out

    def test_smoke_spec_is_small_and_multi_axis(self):
        spec = smoke_spec()
        assert spec.size() <= 20
        assert len(spec.algorithms) > 1 and len(spec.schedulers) > 1
        assert spec.max_activations <= 500

    def test_smoke_flag_runs_with_two_workers(self, capsys):
        assert sweep_main(["--smoke", "--quiet"]) == 0
        assert "Sweep aggregate" in capsys.readouterr().out

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.workers is None  # resolved to 1 (2 under --smoke) in main
        assert args.out is None
        assert not args.smoke
        assert args.backend is None  # resolved from workers in the runner
        assert not args.stream_progress

    def test_backend_summary_printed(self, capsys):
        code = sweep_main(
            ["--algorithms", "kknps", "--schedulers", "ssync", "--workloads", "line",
             "--n", "5", "--seeds", "2", "--max-activations", "120", "--quiet",
             "--backend", "work-stealing", "--workers", "2"]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "backend=work-stealing" in captured
        assert "workers=2" in captured
        assert "steals=" in captured

    def test_stream_progress_prints_eta_and_final_newline(self, capsys):
        code = sweep_main(
            ["--algorithms", "kknps", "--schedulers", "ssync", "--workloads", "line",
             "--n", "5", "--seeds", "2", "--max-activations", "120",
             "--stream-progress"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "ETA" in captured.err
        # The \r-overwritten progress line is always terminated, so the
        # table starts on a fresh line.
        assert captured.err.endswith("\n")
        assert "backend=serial" in captured.out

    def test_socket_backend_through_cli(self, capsys):
        code = sweep_main(
            ["--algorithms", "kknps", "--schedulers", "ssync", "--workloads", "line",
             "--n", "5", "--seeds", "2", "--max-activations", "120", "--quiet",
             "--backend", "socket", "--workers", "2"]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "Sweep aggregate" in captured
        assert "backend=socket" in captured
        # A clean run reports zero churn.
        assert "worker_losses=0" in captured
        assert "requeued=0" in captured

    def test_socket_token_and_lost_after_flags(self, capsys):
        code = sweep_main(
            ["--algorithms", "kknps", "--schedulers", "ssync", "--workloads", "line",
             "--n", "5", "--seeds", "2", "--max-activations", "120", "--quiet",
             "--backend", "socket", "--workers", "2",
             "--worker-token", "hunter2", "--lost-after", "5"]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "backend=socket" in captured
        assert "worker_losses=0" in captured

    def test_socket_flags_require_socket_backend(self, capsys):
        code = sweep_main(
            ["--algorithms", "kknps", "--schedulers", "ssync", "--workloads", "line",
             "--n", "5", "--seeds", "1", "--max-activations", "120", "--quiet",
             "--backend", "work-stealing", "--workers", "2",
             "--worker-token", "hunter2"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "require" in captured.err
        assert "--backend socket" in captured.err
