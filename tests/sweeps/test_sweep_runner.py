"""Tests for the sweep runner: parallel-equals-serial, persistence, resume."""

from __future__ import annotations

import json

import pytest

from repro.sweeps import (
    RunSpec,
    SweepRunner,
    SweepSpec,
    execute_run,
    load_completed_rows,
    run_sweep,
    strip_timing,
)

#: A small grid used by most tests below (12 runs, sub-second).
SMALL_SPEC = SweepSpec(
    algorithms=("kknps",),
    schedulers=("ssync", "k-async"),
    workloads=("line", "blobs"),
    n_robots=(5,),
    seeds=(0, 1, 2),
    scheduler_k=2,
    epsilon=0.08,
    max_activations=150,
)

#: The acceptance grid: >= 200 (algorithm, scheduler, workload, seed) runs.
ACCEPTANCE_SPEC = SweepSpec(
    algorithms=("kknps", "ando"),
    schedulers=("ssync", "k-async", "k-nesta"),
    workloads=("line", "blobs"),
    n_robots=(5, 7),
    seeds=tuple(range(9)),
    scheduler_k=2,
    epsilon=0.1,
    max_activations=120,
)


class TestExecuteRun:
    def test_row_is_flat_and_json_serializable(self):
        spec = SMALL_SPEC.expand()[0]
        row = execute_run(spec)
        assert row["run_key"] == spec.run_key
        assert json.loads(json.dumps(row)) == row
        for key in (
            "algorithm", "scheduler", "workload", "n_robots", "seed", "error_model",
            "converged", "convergence_time", "cohesion", "activations", "epochs",
            "initial_diameter", "final_diameter", "final_min_pairwise",
            "max_edge_stretch", "simulated_time", "wall_time_s",
        ):
            assert key in row

    def test_row_is_reproducible(self):
        spec = SMALL_SPEC.expand()[3]
        assert strip_timing(execute_run(spec)) == strip_timing(execute_run(spec))


class TestSweepRunner:
    def test_acceptance_parallel_equals_serial_on_200_plus_runs(self, tmp_path):
        """>= 200 runs complete with workers > 1, persist, and match the serial fallback."""
        assert ACCEPTANCE_SPEC.size() == 216
        jsonl = tmp_path / "acceptance.jsonl"
        parallel = SweepRunner(
            ACCEPTANCE_SPEC, workers=2, chunk_size=4, jsonl_path=jsonl
        ).run()
        assert len(parallel) == 216
        assert parallel.executed == 216
        serial = SweepRunner(ACCEPTANCE_SPEC, workers=1).run()
        assert parallel.deterministic_rows() == serial.deterministic_rows()
        # The persisted JSONL holds every row, and the aggregate table renders.
        assert len(load_completed_rows(jsonl)) == 216
        assert "216 runs" in parallel.to_table().render()

    def test_rows_keep_expansion_order(self):
        result = run_sweep(SMALL_SPEC, workers=2)
        assert [row["run_key"] for row in result.rows] == [
            spec.run_key for spec in SMALL_SPEC.expand()
        ]

    def test_resume_skips_completed_runs(self, tmp_path):
        jsonl = tmp_path / "rows.jsonl"
        runs = SMALL_SPEC.expand()
        first = run_sweep(runs[:5], jsonl_path=jsonl)
        assert (first.executed, first.resumed) == (5, 0)
        full = run_sweep(SMALL_SPEC, jsonl_path=jsonl)
        assert (full.executed, full.resumed) == (len(runs) - 5, 5)
        # Resumed rows are byte-for-byte the persisted ones.
        persisted = load_completed_rows(jsonl)
        assert all(row == persisted[row["run_key"]] for row in full.rows)

    def test_no_resume_recomputes_everything(self, tmp_path):
        jsonl = tmp_path / "rows.jsonl"
        run_sweep(SMALL_SPEC.expand()[:4], jsonl_path=jsonl)
        result = run_sweep(SMALL_SPEC.expand()[:4], jsonl_path=jsonl, resume=False)
        assert (result.executed, result.resumed) == (4, 0)
        assert len(load_completed_rows(jsonl)) == 4

    def test_partial_trailing_line_is_tolerated(self, tmp_path):
        jsonl = tmp_path / "rows.jsonl"
        run_sweep(SMALL_SPEC.expand()[:3], jsonl_path=jsonl)
        with jsonl.open("a", encoding="utf-8") as handle:
            handle.write('{"run_key": "truncated-by-a-cr')  # killed mid-write
        result = run_sweep(SMALL_SPEC.expand()[:4], jsonl_path=jsonl)
        assert (result.executed, result.resumed) == (1, 3)

    def test_skip_warning_is_one_shot_across_resumes(self, tmp_path):
        import warnings

        jsonl = tmp_path / "rows.jsonl"
        run_sweep(SMALL_SPEC.expand()[:3], jsonl_path=jsonl)
        with jsonl.open("a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
        # First resume past the garbage line: one warning, recorded in
        # the .repairs sidecar.
        with pytest.warns(UserWarning, match="without a parseable sweep row"):
            run_sweep(SMALL_SPEC.expand()[3:5], jsonl_path=jsonl)
        first = load_completed_rows(jsonl)
        assert len(first) == 5
        assert (tmp_path / "rows.jsonl.repairs").exists()

        # Every later resume of the repaired file is silent ...
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = load_completed_rows(jsonl)
        assert again == first

        # ... and the foreign line itself is preserved, not destroyed.
        assert "not json at all\n" in jsonl.read_text()

        # A resume through the runner is silent too and recovers all rows.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = run_sweep(SMALL_SPEC.expand()[:5], jsonl_path=jsonl)
        assert (result.executed, result.resumed) == (0, 5)

    def test_edited_bad_line_warns_again(self, tmp_path):
        jsonl = tmp_path / "rows.jsonl"
        run_sweep(SMALL_SPEC.expand()[:2], jsonl_path=jsonl)
        with jsonl.open("a", encoding="utf-8") as handle:
            handle.write("garbage one\n")
        with pytest.warns(UserWarning, match="without a parseable sweep row"):
            load_completed_rows(jsonl)
        # The same offset now holds *different* bytes: the sidecar record
        # no longer matches, so the warning fires again.
        text = jsonl.read_text().replace("garbage one\n", "garbage two\n")
        jsonl.write_text(text)
        with pytest.warns(UserWarning, match="without a parseable sweep row"):
            load_completed_rows(jsonl)

    def test_no_resume_clears_the_repair_sidecar(self, tmp_path):
        jsonl = tmp_path / "rows.jsonl"
        run_sweep(SMALL_SPEC.expand()[:2], jsonl_path=jsonl)
        with jsonl.open("a", encoding="utf-8") as handle:
            handle.write("junk\n")
        with pytest.warns(UserWarning):
            load_completed_rows(jsonl)
        sidecar = tmp_path / "rows.jsonl.repairs"
        assert sidecar.exists()
        run_sweep(SMALL_SPEC.expand()[:2], jsonl_path=jsonl, resume=False)
        assert not sidecar.exists()

    def test_progress_callback(self):
        calls = []
        run_sweep(
            SMALL_SPEC.expand()[:3],
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls == [(1, 3), (2, 3), (3, 3)]

    def test_duplicate_runs_rejected(self):
        spec = SMALL_SPEC.expand()[0]
        with pytest.raises(ValueError, match="duplicate run key"):
            SweepRunner([spec, spec])

    def test_invalid_worker_counts_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(SMALL_SPEC.expand()[:1], workers=0)
        with pytest.raises(ValueError):
            SweepRunner(SMALL_SPEC.expand()[:1], chunk_size=0)

    def test_aggregate_table_groups_and_counts(self):
        result = run_sweep(SMALL_SPEC)
        rendered = result.to_table().render()
        assert "kknps" in rendered
        assert "ssync" in rendered and "k-async" in rendered
        assert "line" in rendered and "blobs" in rendered
        # 2 schedulers x 2 workloads -> 4 aggregate lines of 3 seeds each.
        assert rendered.count("3/3") >= 4
