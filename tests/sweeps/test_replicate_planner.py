"""Tests for replicate-bundle planning and batched sweep execution.

The planner folds seed-replicates into bundles; the executor must hand
back rows that match serial execution field-for-field outside
:data:`~repro.sweeps.runner.TIMING_FIELDS`, so the JSONL file, sqlite
store and aggregator never notice batching happened.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.sweeps import RunSpec, SweepSpec, execute_run, run_sweep, strip_timing
from repro.sweeps.replicate import (
    MAX_BUNDLE,
    ReplicateBundle,
    bundle_eligible,
    execute_bundle,
    execute_work_item,
    plan_replicate_bundles,
)


def _spec(seed=0, **overrides):
    base = dict(
        algorithm="kknps",
        scheduler="ssync",
        workload="line",
        n_robots=5,
        error_model="exact",
        seed=seed,
        scheduler_k=2,
        epsilon=0.08,
        max_activations=60,
    )
    base.update(overrides)
    return RunSpec(**base)


REPLICATED_SPEC = SweepSpec(
    algorithms=("kknps",),
    schedulers=("ssync",),
    workloads=("line",),
    n_robots=(5,),
    seeds=(0, 1, 2, 3),
    scheduler_k=2,
    epsilon=0.08,
    max_activations=60,
)


class TestPlanner:
    def test_seed_replicates_fold_into_one_bundle(self):
        specs = [_spec(seed=s) for s in range(4)]
        items = plan_replicate_bundles(specs)
        assert len(items) == 1
        (bundle,) = items
        assert isinstance(bundle, ReplicateBundle)
        assert [m.seed for m in bundle.members] == [0, 1, 2, 3]

    def test_non_seed_field_differences_split_groups(self):
        specs = [
            _spec(seed=0),
            _spec(seed=1),
            _spec(seed=0, n_robots=7),
            _spec(seed=1, n_robots=7),
        ]
        items = plan_replicate_bundles(specs)
        assert len(items) == 2
        assert all(isinstance(item, ReplicateBundle) for item in items)
        assert {item.members[0].n_robots for item in items} == {5, 7}

    def test_continuous_time_schedulers_declined(self):
        specs = [_spec(seed=s, scheduler="k-async") for s in range(3)]
        assert not any(bundle_eligible(s) for s in specs)
        items = plan_replicate_bundles(specs)
        assert items == specs

    def test_singleton_groups_stay_plain_specs(self):
        lone = _spec(seed=0)
        items = plan_replicate_bundles([lone])
        assert items == [lone]

    def test_bundle_sits_at_first_member_slot(self):
        """Expansion order survives planning: bundles replace their head."""
        other = _spec(seed=0, scheduler="k-async")
        specs = [_spec(seed=0), other, _spec(seed=1)]
        items = plan_replicate_bundles(specs)
        assert isinstance(items[0], ReplicateBundle)
        assert items[1] is other

    def test_long_seed_axes_chunk_at_max_bundle(self):
        specs = [_spec(seed=s) for s in range(MAX_BUNDLE + 3)]
        items = plan_replicate_bundles(specs)
        assert [len(item) for item in items] == [MAX_BUNDLE, 3]

    def test_chunk_remainder_of_one_stays_plain(self):
        specs = [_spec(seed=s) for s in range(5)]
        items = plan_replicate_bundles(specs, max_bundle=4)
        assert len(items) == 2
        assert len(items[0]) == 4
        assert items[1] == specs[4]

    def test_bundle_needs_two_members(self):
        with pytest.raises(ValueError):
            ReplicateBundle((_spec(seed=0),))

    def test_cost_hint_bills_replicate_rate(self):
        bundle = ReplicateBundle(tuple(_spec(seed=s) for s in range(3)))
        member_rate = _spec().cost_hint(cost_class="2d-replicate")
        assert bundle.cost_hint() == pytest.approx(3 * member_rate)
        assert bundle.cost_hint() < sum(_spec(seed=s).cost_hint() for s in range(3))


class TestExecuteBundle:
    def test_rows_match_serial_outside_timing(self):
        specs = [_spec(seed=s) for s in range(3)]
        rows = execute_bundle(ReplicateBundle(tuple(specs)))
        assert [row["run_key"] for row in rows] == [s.run_key for s in specs]
        for spec, row in zip(specs, rows):
            assert strip_timing(row) == strip_timing(execute_run(spec))

    def test_rows_carry_provenance_marker(self):
        specs = [_spec(seed=s) for s in range(3)]
        rows = execute_bundle(ReplicateBundle(tuple(specs)))
        assert all(row["batched_replicates"] == 3 for row in rows)
        assert "batched_replicates" not in execute_run(specs[0])

    def test_work_item_dispatch(self):
        lone = _spec(seed=0)
        assert execute_work_item(lone)["run_key"] == lone.run_key
        bundle = ReplicateBundle(tuple(_spec(seed=s) for s in range(2)))
        rows = execute_work_item(bundle)
        assert [row["seed"] for row in rows] == [0, 1]


class TestSweepIntegration:
    def test_batched_sweep_equals_serial_sweep(self):
        serial = run_sweep(REPLICATED_SPEC, resume=False)
        batched = run_sweep(REPLICATED_SPEC, resume=False, replicate_batch=True)
        assert [strip_timing(row) for row in batched.rows] == [
            strip_timing(row) for row in serial.rows
        ]

    def test_mixed_grid_bundles_only_the_eligible(self):
        spec = dataclasses.replace(REPLICATED_SPEC, schedulers=("ssync", "k-async"))
        serial = run_sweep(spec, resume=False)
        batched = run_sweep(spec, resume=False, replicate_batch=True)
        assert [strip_timing(row) for row in batched.rows] == [
            strip_timing(row) for row in serial.rows
        ]
        by_scheduler = {
            row["scheduler"]: row.get("batched_replicates") for row in batched.rows
        }
        assert by_scheduler["ssync"] == 4
        assert by_scheduler["k-async"] is None

    def test_store_dedup_serves_bundle_partially_from_cache(self, tmp_path):
        """Cached seeds become store hits; the rest still bundle."""
        store = tmp_path / "results.sqlite"
        warm = dataclasses.replace(REPLICATED_SPEC, seeds=(1, 2))
        warm_rows = run_sweep(warm, resume=False, store=store).rows
        result = run_sweep(
            REPLICATED_SPEC, resume=False, store=store, replicate_batch=True
        )
        rows = {row["seed"]: row for row in result.rows}
        assert sorted(rows) == [0, 1, 2, 3]
        # Seeds 1 and 2 came from the store (serial rows, no marker);
        # seeds 0 and 3 were left over and ran as a two-member bundle.
        for row in warm_rows:
            assert strip_timing(rows[row["seed"]]) == strip_timing(row)
        assert rows[1].get("batched_replicates") is None
        assert rows[2].get("batched_replicates") is None
        assert rows[0]["batched_replicates"] == 2
        assert rows[3]["batched_replicates"] == 2
        # And the batched rows equal what serial execution would produce.
        for seed in (0, 3):
            spec = next(
                s for s in REPLICATED_SPEC.expand() if s.seed == seed
            )
            assert strip_timing(rows[seed]) == strip_timing(execute_run(spec))

    def test_store_dedup_can_absorb_the_whole_bundle(self, tmp_path):
        store = tmp_path / "results.sqlite"
        run_sweep(REPLICATED_SPEC, resume=False, store=store)
        result = run_sweep(
            REPLICATED_SPEC, resume=False, store=store, replicate_batch=True
        )
        assert all(row.get("batched_replicates") is None for row in result.rows)

    def test_process_pool_backend_executes_bundles(self):
        batched = run_sweep(
            REPLICATED_SPEC,
            resume=False,
            replicate_batch=True,
            backend="process-pool",
            workers=2,
        )
        serial = run_sweep(REPLICATED_SPEC, resume=False)
        assert [strip_timing(row) for row in batched.rows] == [
            strip_timing(row) for row in serial.rows
        ]
        assert any(row.get("batched_replicates") for row in batched.rows)
