"""Tests for the pluggable execution backends.

The contract under test: every backend produces bit-identical
deterministic rows (timing fields excluded) for the same specs, reports
worker health, and streams rows incrementally enough that a sweep killed
mid-run resumes losslessly from its partially-written JSONL.
"""

from __future__ import annotations

import json

import pytest

from repro.sweeps import (
    RunSpec,
    SweepRunner,
    SweepSpec,
    backend_names,
    load_completed_rows,
    make_backend,
    run_sweep,
)
from repro.sweeps.backends.work_stealing import (
    MAX_CHUNK,
    cost_sorted_chunks,
    dynamic_chunk_size,
)

#: The 216-run acceptance grid (same shape as the process-pool acceptance
#: test in test_sweep_runner.py).
ACCEPTANCE_SPEC = SweepSpec(
    algorithms=("kknps", "ando"),
    schedulers=("ssync", "k-async", "k-nesta"),
    workloads=("line", "blobs"),
    n_robots=(5, 7),
    seeds=tuple(range(9)),
    scheduler_k=2,
    epsilon=0.1,
    max_activations=120,
)

#: A small grid for the cheaper behavioural tests (12 runs).
SMALL_SPEC = SweepSpec(
    algorithms=("kknps",),
    schedulers=("ssync", "k-async"),
    workloads=("line", "blobs"),
    n_robots=(5,),
    seeds=(0, 1, 2),
    scheduler_k=2,
    epsilon=0.08,
    max_activations=150,
)

#: A mixed planar/3D run list — the skew the work-stealing backend targets.
MIXED_RUNS = [
    RunSpec(
        algorithm="kknps", scheduler="ssync", workload="line", n_robots=5,
        seed=seed, epsilon=0.1, max_activations=100,
    )
    for seed in range(4)
] + [
    RunSpec(
        algorithm="kknps3", scheduler="ssync3", workload="line3", n_robots=6,
        seed=seed, algorithm_params=(("k", 1),), scheduler_k=1,
        epsilon=0.1, max_activations=40,
    )
    for seed in range(2)
]


class TestRegistry:
    def test_four_backends_registered(self):
        assert backend_names() == ("serial", "process-pool", "work-stealing", "socket")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("carrier-pigeon")
        with pytest.raises(ValueError, match="unknown backend"):
            SweepRunner(SMALL_SPEC.expand()[:1], backend="carrier-pigeon")

    def test_default_backend_resolution(self):
        assert SweepRunner(SMALL_SPEC.expand()[:1]).resolve_backend().name == "serial"
        assert (
            SweepRunner(SMALL_SPEC.expand()[:1], workers=2).resolve_backend().name
            == "process-pool"
        )


class TestCostModel:
    def test_cost_grows_with_work(self):
        small = RunSpec(algorithm="kknps", scheduler="ssync", workload="line",
                        n_robots=5, seed=0, max_activations=100)
        big_n = RunSpec(algorithm="kknps", scheduler="ssync", workload="line",
                        n_robots=50, seed=0, max_activations=100)
        long_run = RunSpec(algorithm="kknps", scheduler="ssync", workload="line",
                           n_robots=5, seed=0, max_activations=10000)
        assert big_n.cost_hint() > small.cost_hint()
        assert long_run.cost_hint() > small.cost_hint()

    def test_3d_costs_more_than_planar_at_same_size(self):
        planar = RunSpec(algorithm="kknps", scheduler="ssync", workload="line",
                         n_robots=8, seed=0, max_activations=500)
        spatial = RunSpec(algorithm="kknps3", scheduler="ssync3", workload="line3",
                          n_robots=8, seed=0, algorithm_params=(("k", 1),),
                          max_activations=500)
        assert spatial.cost_hint() > planar.cost_hint()

    def test_dynamic_chunk_size_shrinks_to_one(self):
        assert dynamic_chunk_size(1000, 4) == MAX_CHUNK
        assert dynamic_chunk_size(40, 4) == 2
        assert dynamic_chunk_size(3, 4) == 1
        assert dynamic_chunk_size(1, 4) == 1

    def test_cost_sorted_chunks_partition_specs_largest_first(self):
        """The shared chunking helper: every spec exactly once, LPT order,
        chunk sizes shrinking toward the tail."""
        specs = MIXED_RUNS + SMALL_SPEC.expand()
        chunks = cost_sorted_chunks(specs, workers=2)
        flat = [spec for chunk in chunks for spec in chunk]
        assert sorted(s.run_key for s in flat) == sorted(s.run_key for s in specs)
        heads = [chunk[0].cost_hint() for chunk in chunks]
        assert heads == sorted(heads, reverse=True)
        assert all(1 <= len(chunk) <= MAX_CHUNK for chunk in chunks)
        assert len(chunks[-1]) <= len(chunks[0])

    def test_spec_dict_round_trip_through_json(self):
        for spec in MIXED_RUNS:
            payload = json.loads(json.dumps(spec.to_dict()))
            assert RunSpec.from_dict(payload) == spec


class TestWorkStealingBackend:
    def test_acceptance_equals_serial_on_216_runs(self, tmp_path):
        """The 216-run acceptance grid: work-stealing == serial, bit for bit."""
        assert ACCEPTANCE_SPEC.size() == 216
        jsonl = tmp_path / "ws.jsonl"
        stealing = SweepRunner(
            ACCEPTANCE_SPEC, workers=2, backend="work-stealing", jsonl_path=jsonl
        ).run()
        assert len(stealing) == 216
        assert stealing.executed == 216
        serial = SweepRunner(ACCEPTANCE_SPEC, workers=1).run()
        assert stealing.deterministic_rows() == serial.deterministic_rows()
        assert len(load_completed_rows(jsonl)) == 216
        # Both workers did real work, and the health report accounts for
        # every run.
        stats = stealing.stats
        assert stats.backend == "work-stealing"
        assert stats.runs == 216
        assert sum(w.runs for w in stats.worker_health) == 216
        assert all(w.runs > 0 for w in stats.worker_health)

    def test_rows_returned_in_expansion_order(self):
        result = run_sweep(SMALL_SPEC, workers=2, backend="work-stealing")
        assert [row["run_key"] for row in result.rows] == [
            spec.run_key for spec in SMALL_SPEC.expand()
        ]

    def test_mixed_dimension_runs_execute(self):
        serial = run_sweep(MIXED_RUNS)
        stealing = run_sweep(MIXED_RUNS, workers=2, backend="work-stealing")
        assert stealing.deterministic_rows() == serial.deterministic_rows()
        assert {row["dimension"] for row in stealing.rows} == {2, 3}

    def test_worker_failure_surfaces(self):
        bad = RunSpec(algorithm="kknps", scheduler="ssync", workload="line",
                      n_robots=5, seed=0, max_activations=50)

        backend = make_backend("work-stealing", workers=2, run_fn=_explode)
        with pytest.raises(RuntimeError, match="worker .* failed"):
            list(backend.execute([bad]))


def _explode(spec):
    raise ValueError("boom")


class TestKillResume:
    def test_mid_sweep_kill_resumes_losslessly(self, tmp_path):
        """A sweep killed after 5 of 12 rows resumes from the JSONL exactly."""
        jsonl = tmp_path / "killed.jsonl"

        class Killed(RuntimeError):
            pass

        def kill_after_five(tick):
            if tick.done == 5:
                raise Killed()

        with pytest.raises(Killed):
            run_sweep(
                SMALL_SPEC,
                workers=2,
                backend="work-stealing",
                jsonl_path=jsonl,
                stream_progress=kill_after_five,
            )
        survivors = load_completed_rows(jsonl)
        assert len(survivors) == 5

        resumed = run_sweep(SMALL_SPEC, jsonl_path=jsonl)
        assert (resumed.executed, resumed.resumed) == (7, 5)
        reference = run_sweep(SMALL_SPEC)
        assert resumed.deterministic_rows() == reference.deterministic_rows()

    def test_truncated_trailing_line_is_repaired(self, tmp_path):
        """A crash mid-append leaves a partial line; loading rewrites the file."""
        jsonl = tmp_path / "rows.jsonl"
        run_sweep(SMALL_SPEC.expand()[:3], jsonl_path=jsonl)
        clean_size = jsonl.stat().st_size
        with jsonl.open("a", encoding="utf-8") as handle:
            handle.write('{"run_key": "truncated-by-a-cr')
        with pytest.warns(UserWarning, match="truncated trailing JSONL line"):
            survivors = load_completed_rows(jsonl)
        assert len(survivors) == 3
        # The partial line is gone from disk: appends start on a clean
        # boundary and a re-load parses every byte.
        assert jsonl.stat().st_size == clean_size
        assert jsonl.read_bytes().endswith(b"\n")
        resumed = run_sweep(SMALL_SPEC.expand()[:4], jsonl_path=jsonl)
        assert (resumed.executed, resumed.resumed) == (1, 3)
        assert len(load_completed_rows(jsonl)) == 4

    def test_garbage_middle_line_warns_and_skips(self, tmp_path):
        jsonl = tmp_path / "rows.jsonl"
        run_sweep(SMALL_SPEC.expand()[:2], jsonl_path=jsonl)
        lines = jsonl.read_text(encoding="utf-8").splitlines()
        lines.insert(1, "not json at all")
        jsonl.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.warns(UserWarning, match="skipping JSONL line"):
            survivors = load_completed_rows(jsonl)
        assert len(survivors) == 2

    def test_parseable_unterminated_line_keeps_row_and_gets_newline(self, tmp_path):
        """A crash between the row bytes and the newline: the row counts as
        completed, and the loader terminates the file so the next append
        cannot merge two rows onto one line."""
        jsonl = tmp_path / "rows.jsonl"
        run_sweep(SMALL_SPEC.expand()[:3], jsonl_path=jsonl)
        with jsonl.open("r+b") as handle:
            handle.seek(-1, 2)
            assert handle.read(1) == b"\n"
            handle.seek(-1, 2)
            handle.truncate()  # chop only the final newline
        with pytest.warns(UserWarning, match="unterminated final JSONL line"):
            survivors = load_completed_rows(jsonl)
        assert len(survivors) == 3
        assert jsonl.read_bytes().endswith(b"\n")
        resumed = run_sweep(SMALL_SPEC.expand()[:4], jsonl_path=jsonl)
        assert (resumed.executed, resumed.resumed) == (1, 3)
        assert len(load_completed_rows(jsonl)) == 4

    def test_complete_foreign_trailing_line_is_preserved(self, tmp_path):
        """A newline-terminated line the runner does not own is skipped, not
        destroyed — only an unterminated line counts as a crashed append."""
        jsonl = tmp_path / "rows.jsonl"
        run_sweep(SMALL_SPEC.expand()[:2], jsonl_path=jsonl)
        with jsonl.open("a", encoding="utf-8") as handle:
            handle.write('{"note": "not a sweep row"}\n')
        size = jsonl.stat().st_size
        with pytest.warns(UserWarning, match="skipping JSONL line"):
            survivors = load_completed_rows(jsonl)
        assert len(survivors) == 2
        assert jsonl.stat().st_size == size


def _sleepy_run_fn(spec):
    """A picklable run function that outlasts the test's heartbeat interval."""
    import time

    time.sleep(0.2)
    return {"run_key": spec.run_key, "slept": True}


class TestSocketBackend:
    def test_loopback_equals_serial(self):
        """2 workers over localhost TCP reproduce the serial rows."""
        runs = SMALL_SPEC.expand()[:8]
        serial = run_sweep(runs)
        socketed = run_sweep(runs, workers=2, backend="socket")
        assert socketed.deterministic_rows() == serial.deterministic_rows()
        stats = socketed.stats
        assert stats.backend == "socket"
        assert stats.runs == 8
        assert sum(w.runs for w in stats.worker_health) == 8

    def test_heartbeats_surface_last_beat_age(self):
        """Workers beat periodically; stats carry a finite last-beat age."""
        from repro.sweeps.backends.socket_backend import SocketBackend

        # The injected run function sleeps well past the heartbeat interval,
        # so every worker provably emits periodic beats beyond its hello —
        # no dependence on how fast real simulations happen to run.
        backend = SocketBackend(
            workers=2, heartbeat_interval=0.05, run_fn=_sleepy_run_fn
        )
        runs = SMALL_SPEC.expand()[:4]
        rows = dict(backend.execute(runs))
        assert len(rows) == 4
        stats = backend.stats()
        assert stats.worker_health
        for health in stats.worker_health:
            assert health.heartbeats >= 1  # the hello is the first beat
            assert health.last_heartbeat_age_s is not None
            assert 0.0 <= health.last_heartbeat_age_s < 60.0
        assert sum(w.heartbeats for w in stats.worker_health) > len(
            stats.worker_health
        )
        assert "hb" in stats.summary()

    def test_heartbeat_interval_validated(self):
        from repro.sweeps.backends.socket_backend import SocketBackend

        with pytest.raises(ValueError, match="heartbeat"):
            SocketBackend(workers=1, heartbeat_interval=0.0)

    def test_frame_round_trip(self):
        import socket as socket_module
        import threading

        from repro.sweeps.backends.socket_backend import recv_frame, send_frame

        server, client = socket_module.socketpair()
        message = {"type": "task", "specs": [MIXED_RUNS[0].to_dict()]}
        thread = threading.Thread(target=send_frame, args=(server, message))
        thread.start()
        received = recv_frame(client)
        thread.join()
        server.close()
        client.close()
        assert received == json.loads(json.dumps(message))
        assert RunSpec.from_dict(received["specs"][0]) == MIXED_RUNS[0]


class TestStreamedProgress:
    def test_eta_reaches_zero_and_costs_accumulate(self):
        ticks = []
        run_sweep(
            SMALL_SPEC.expand()[:3],
            stream_progress=ticks.append,
        )
        assert [tick.done for tick in ticks] == [1, 2, 3]
        assert ticks[-1].eta_s == 0.0
        assert ticks[-1].cost_done == pytest.approx(ticks[-1].cost_total)
        assert all(tick.aggregate["rows"] == tick.done for tick in ticks)

    def test_legacy_progress_still_fires(self):
        calls = []
        run_sweep(
            SMALL_SPEC.expand()[:3],
            workers=2,
            backend="work-stealing",
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls == [(1, 3), (2, 3), (3, 3)]
