"""Property-style tests for sweep specifications and their expansion."""

from __future__ import annotations

import itertools
import pickle

import pytest

from repro.sweeps import (
    K_SCHEDULERS,
    RunSpec,
    SweepSpec,
    check_unique_keys,
)


class TestRunSpec:
    def test_is_picklable(self):
        spec = RunSpec(
            algorithm="kknps",
            scheduler="k-async",
            workload="blobs",
            n_robots=10,
            seed=3,
            algorithm_params=(("k", 2), ("radius_divisor", 4.0)),
            k_bound=2,
        )
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_run_key_is_deterministic_and_injective_on_fields(self):
        base = RunSpec(
            algorithm="kknps", scheduler="k-async", workload="random", n_robots=8, seed=0
        )
        assert base.run_key == base.run_key
        assert base.with_seed(0).run_key == base.run_key
        assert base.with_seed(1).run_key != base.run_key
        changed = RunSpec(
            algorithm="kknps", scheduler="k-async", workload="random", n_robots=9, seed=0
        )
        assert changed.run_key != base.run_key

    def test_validation(self):
        with pytest.raises(ValueError):
            RunSpec(algorithm="kknps", scheduler="ssync", workload="line", n_robots=0, seed=0)
        with pytest.raises(ValueError):
            RunSpec(
                algorithm="kknps", scheduler="ssync", workload="line", n_robots=5,
                seed=0, epsilon=0.0,
            )
        with pytest.raises(ValueError):
            RunSpec(
                algorithm="kknps", scheduler="ssync", workload="line", n_robots=5,
                seed=0, max_activations=0,
            )


class TestSweepSpecExpansion:
    # A spread of axis shapes: every combination below must expand to the
    # exact product of its axis sizes with pairwise-distinct run keys.
    AXIS_CASES = [
        dict(algorithms=("kknps",), schedulers=("ssync",), workloads=("line",),
             n_robots=(5,), error_models=("exact",), seeds=(0,)),
        dict(algorithms=("kknps", "ando"), schedulers=("ssync", "k-async"),
             workloads=("line", "blobs"), n_robots=(5, 8),
             error_models=("exact",), seeds=(0, 1, 2)),
        dict(algorithms=("kknps", "ando", "katreniak"),
             schedulers=("ssync", "k-async", "k-nesta", "fsync"),
             workloads=("random",), n_robots=(6,),
             error_models=("exact", "distance-5", "nonrigid-50"), seeds=(0, 4)),
    ]

    @pytest.mark.parametrize("axes", AXIS_CASES)
    def test_expansion_count_is_product_of_axis_sizes(self, axes):
        spec = SweepSpec(**axes)
        runs = spec.expand()
        expected = 1
        for axis in axes.values():
            expected *= len(axis)
        assert len(runs) == expected == spec.size()

    @pytest.mark.parametrize("axes", AXIS_CASES)
    def test_expansion_has_no_duplicate_run_keys(self, axes):
        runs = SweepSpec(**axes).expand()
        keys = [run.run_key for run in runs]
        assert len(set(keys)) == len(keys)
        check_unique_keys(runs)  # must not raise

    def test_expansion_is_deterministic(self):
        spec = SweepSpec(
            algorithms=("kknps", "ando"), schedulers=("ssync", "k-async"),
            workloads=("line",), n_robots=(5,), seeds=(0, 1),
        )
        assert spec.expand() == spec.expand()

    def test_every_grid_point_appears_exactly_once(self):
        spec = SweepSpec(
            algorithms=("kknps", "ando"), schedulers=("ssync", "k-async"),
            workloads=("line", "blobs"), n_robots=(5, 8), seeds=(0, 1),
        )
        runs = spec.expand()
        combos = {
            (r.algorithm, r.scheduler, r.workload, r.n_robots, r.error_model, r.seed)
            for r in runs
        }
        expected = set(
            itertools.product(
                spec.algorithms, spec.schedulers, spec.workloads,
                spec.n_robots, spec.error_models, spec.seeds,
            )
        )
        assert combos == expected

    def test_k_bound_follows_scheduler_class(self):
        spec = SweepSpec(
            algorithms=("kknps",),
            schedulers=("ssync", "k-async", "k-nesta", "fsync", "async"),
            workloads=("line",), n_robots=(5,), seeds=(0,), scheduler_k=3,
        )
        for run in spec.expand():
            if run.scheduler in K_SCHEDULERS:
                assert run.k_bound == 3
                assert ("k", 3) in run.algorithm_params
            else:
                assert run.k_bound is None
                assert ("k", 1) in run.algorithm_params

    def test_axis_validation(self):
        with pytest.raises(ValueError):
            SweepSpec(algorithms=())
        with pytest.raises(ValueError):
            SweepSpec(seeds=(0, 0))
        with pytest.raises(ValueError):
            SweepSpec(algorithms=("not-an-algorithm",))
        with pytest.raises(ValueError):
            SweepSpec(schedulers=("not-a-scheduler",))
        with pytest.raises(ValueError):
            SweepSpec(workloads=("not-a-workload",))
        with pytest.raises(ValueError):
            SweepSpec(error_models=("not-an-error-model",))

    def test_duplicate_run_keys_detected(self):
        run = RunSpec(
            algorithm="kknps", scheduler="ssync", workload="line", n_robots=5, seed=0
        )
        with pytest.raises(ValueError, match="duplicate run key"):
            check_unique_keys([run, run])


class TestWorkloadFactoriesHonourN:
    """A grid point labelled n must simulate exactly n robots — otherwise
    distinct run keys alias the same simulation and the aggregates lie."""

    @pytest.mark.parametrize("workload", ["random", "line", "grid", "clusters", "blobs"])
    @pytest.mark.parametrize("n", [2, 5, 6, 9, 16])
    def test_exact_robot_count(self, workload, n):
        from repro.sweeps import make_workload

        configuration = make_workload(workload, n, seed=1)
        assert len(configuration) == n
        assert configuration.is_connected()

    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_ring_exact_count(self, n):
        from repro.sweeps import make_workload

        assert len(make_workload("ring", n, seed=0)) == n

    def test_ring_rejects_tiny_n_instead_of_padding(self):
        from repro.sweeps import make_workload

        with pytest.raises(ValueError):
            make_workload("ring", 2, seed=0)
