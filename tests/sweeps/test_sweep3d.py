"""Tests for 3D runs flowing through the sweep pipeline end to end."""

from __future__ import annotations

import pytest

from repro.spatial3d import (
    KKNPS3Algorithm,
    Simulation3Config,
    run_simulation3,
)
from repro.sweeps import RunSpec, SweepSpec, run_sweep
from repro.sweeps.factories import (
    activation_probability3,
    error_model3_xi,
    make_algorithm,
    make_workload,
    run_dimension,
)
from repro.sweeps.runner import execute_run


class TestDimensionDispatch:
    def test_planar_names_are_dimension_2(self):
        assert run_dimension("kknps", "k-async", "random") == 2

    def test_3d_names_are_dimension_3(self):
        assert run_dimension("kknps3", "ssync3", "random3", "nonrigid-50") == 3

    @pytest.mark.parametrize(
        "algorithm,scheduler,workload",
        [
            ("kknps", "k-async", "random3"),
            ("kknps3", "k-async", "random3"),
            ("kknps3", "ssync3", "random"),
            ("kknps", "ssync3", "random"),
        ],
    )
    def test_mixed_dimensions_rejected(self, algorithm, scheduler, workload):
        with pytest.raises(ValueError, match="mixed-dimension"):
            run_dimension(algorithm, scheduler, workload)

    def test_3d_error_models_restricted(self):
        with pytest.raises(ValueError, match="not available in 3D"):
            run_dimension("kknps3", "ssync3", "random3", "distance-5")

    def test_mixed_sweep_spec_rejected_at_build_time(self):
        with pytest.raises(ValueError, match="mixed-dimension"):
            SweepSpec(algorithms=("kknps",), workloads=("random3",))

    def test_unknown_names_still_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            SweepSpec(workloads=("random4",))


class TestFactories3D:
    def test_algorithm_factory_passes_k(self):
        algorithm = make_algorithm("kknps3", (("k", 3),))
        assert isinstance(algorithm, KKNPS3Algorithm)
        assert algorithm.k == 3

    def test_scheduler_probabilities(self):
        assert activation_probability3("fsync3") == 1.0
        assert activation_probability3("ssync3") == 0.6

    def test_error_model_xi(self):
        assert error_model3_xi("exact") == 1.0
        assert error_model3_xi("nonrigid-50") == 0.5

    @pytest.mark.parametrize("name,n", [("line3", 5), ("random3", 9), ("lattice3", 8)])
    def test_workloads_have_exactly_n_robots(self, name, n):
        configuration = make_workload(name, n, seed=1, visibility_range=1.0)
        assert len(configuration) == n
        assert configuration.is_connected()

    def test_lattice3_requires_perfect_cube(self):
        with pytest.raises(ValueError, match="perfect-cube"):
            make_workload("lattice3", 10, seed=0)


class TestExecuteRun3D:
    def _spec(self, **overrides) -> RunSpec:
        base = dict(
            algorithm="kknps3",
            scheduler="ssync3",
            workload="random3",
            n_robots=8,
            seed=4,
            error_model="nonrigid-50",
            scheduler_k=2,
            algorithm_params=(("k", 2),),
            epsilon=0.05,
            max_activations=400,
        )
        base.update(overrides)
        return RunSpec(**base)

    def test_row_contract(self):
        row = execute_run(self._spec())
        assert row["dimension"] == 3
        assert row["epochs"] is None
        assert row["rounds"] >= 1
        assert row["simulated_time"] == float(row["rounds"])
        assert row["activations"] >= row["rounds"]
        assert row["n_robots"] == 8
        assert 0.0 < row["final_diameter"] < row["initial_diameter"]

    def test_row_matches_direct_engine_run(self):
        """The sweep row is exactly a run_simulation3 call on the factories."""
        spec = self._spec()
        row = execute_run(spec)
        configuration = make_workload(spec.workload, spec.n_robots, spec.seed, 1.0)
        result = run_simulation3(
            configuration.positions,
            KKNPS3Algorithm(k=2),
            Simulation3Config(
                visibility_range=configuration.visibility_range,
                max_rounds=spec.max_activations,
                convergence_epsilon=spec.epsilon,
                activation_probability=0.6,
                xi=0.5,
                seed=spec.seed,
            ),
        )
        assert row["converged"] == result.converged
        assert row["cohesion"] == result.cohesion_maintained
        assert row["rounds"] == result.rounds_executed
        assert row["activations"] == result.activations_executed
        assert row["final_diameter"] == result.final_diameter

    def test_parallel_equals_serial_3d(self):
        spec = SweepSpec(
            algorithms=("kknps3",),
            schedulers=("ssync3", "fsync3"),
            workloads=("line3", "random3"),
            n_robots=(6,),
            error_models=("exact", "nonrigid-50"),
            seeds=(0, 1),
            max_activations=150,
        )
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=2)
        assert serial.deterministic_rows() == parallel.deterministic_rows()

    def test_continuous_3d_row_contract(self):
        """kasync3 rows: continuous time, no rounds, epochs from end times."""
        row = execute_run(self._spec(scheduler="kasync3", error_model="exact"))
        assert row["dimension"] == 3
        assert row["rounds"] is None
        assert row["scheduler"] == "kasync3"
        assert row["activations"] >= 1
        assert row["simulated_time"] > 0.0
        if row["converged"]:
            assert row["epochs"] >= 1
        assert 0.0 < row["final_diameter"] < row["initial_diameter"]

    def test_continuous_row_matches_direct_engine_run(self):
        """A kasync3 sweep row is exactly a run_simulation3_async call."""
        from repro.schedulers import KAsyncScheduler
        from repro.spatial3d import AsyncSimulation3Config, run_simulation3_async
        from repro.sweeps.factories import make_error_models

        spec = self._spec(scheduler="kasync3", error_model="nonrigid-50")
        row = execute_run(spec)
        configuration = make_workload(spec.workload, spec.n_robots, spec.seed, 1.0)
        perception, motion = make_error_models(spec.error_model)
        result = run_simulation3_async(
            configuration.positions,
            KKNPS3Algorithm(k=2),
            KAsyncScheduler(k=2),
            AsyncSimulation3Config(
                visibility_range=configuration.visibility_range,
                perception=perception,
                motion=motion,
                seed=spec.seed,
                max_activations=spec.max_activations,
                convergence_epsilon=spec.epsilon,
            ),
        )
        assert row["converged"] == result.converged
        assert row["convergence_time"] == result.convergence_time
        assert row["cohesion"] == result.cohesion_maintained
        assert row["activations"] == result.activations_processed
        assert row["final_diameter"] == result.final_diameter

    def test_planar_only_error_model_rejected_for_continuous_3d(self):
        with pytest.raises(ValueError, match="planar-only"):
            run_dimension("kknps3", "kasync3", "random3", "skew-10")

    def test_distance_error_allowed_for_continuous_3d(self):
        assert run_dimension("kknps3", "kasync3", "random3", "distance-5") == 3
        assert run_dimension("kknps3", "nesta3", "random3", "quad-motion") == 3

    def test_resume_skips_completed_3d_runs(self, tmp_path):
        spec = SweepSpec(
            algorithms=("kknps3",),
            schedulers=("fsync3",),
            workloads=("line3",),
            n_robots=(5,),
            seeds=(0, 1, 2),
            max_activations=120,
        )
        jsonl = tmp_path / "runs3d.jsonl"
        first = run_sweep(spec, jsonl_path=jsonl)
        assert first.executed == 3
        second = run_sweep(spec, jsonl_path=jsonl)
        assert second.executed == 0 and second.resumed == 3
        assert second.deterministic_rows() == first.deterministic_rows()


class TestKAsync3DAcceptance:
    """The new scenario family end to end: a 3D k-async sweep through the CLI."""

    ARGS = [
        "--algorithms", "kknps3",
        "--schedulers", "kasync3",
        "--workloads", "random3",
        "--n", "6",
        "--seeds", "2",
        "--k", "2",
        "--errors", "exact", "nonrigid-50",
        "--max-activations", "250",
        "--quiet",
    ]

    def test_cli_serial_equals_work_stealing(self, tmp_path, capsys):
        """Serial and work-stealing CLI invocations write identical rows."""
        from repro.sweeps.cli import main
        from repro.sweeps.runner import load_completed_rows, strip_timing

        serial_out = tmp_path / "serial.jsonl"
        stolen_out = tmp_path / "stolen.jsonl"
        assert main(self.ARGS + ["--out", str(serial_out)]) == 0
        assert main(
            self.ARGS
            + ["--out", str(stolen_out), "--backend", "work-stealing", "--workers", "2"]
        ) == 0
        capsys.readouterr()

        serial_rows = load_completed_rows(serial_out)
        stolen_rows = load_completed_rows(stolen_out)
        assert len(serial_rows) == 4
        assert set(serial_rows) == set(stolen_rows)
        for key, row in serial_rows.items():
            assert strip_timing(row) == strip_timing(stolen_rows[key])
        # The grid expansion matched the algorithm's k to the scheduler's
        # bound and recorded the error-model axis in the run keys.
        assert all("kasync3(k=2)" in key for key in serial_rows)
        assert {row["error_model"] for row in serial_rows.values()} == {
            "exact",
            "nonrigid-50",
        }
        assert all(row["dimension"] == 3 for row in serial_rows.values())
