"""Tests for robot kinematic state and phase transitions."""

import pytest

from repro.geometry import Point
from repro.model import Phase, Robot


class TestTransitions:
    def test_initial_state(self):
        robot = Robot(robot_id=0, position=Point(1, 2))
        assert robot.is_idle()
        assert not robot.is_motile()
        assert robot.activation_count == 0

    def test_full_cycle(self):
        robot = Robot(robot_id=0, position=Point(0, 0))
        robot.begin_activation(1.0)
        assert robot.phase is Phase.COMPUTING
        assert robot.activation_count == 1
        robot.begin_move((0, 0), (1, 0), start_time=2.0, end_time=3.0)
        assert robot.is_motile()
        end = robot.finish_move()
        assert end == Point(1, 0)
        assert robot.is_idle()
        assert robot.total_distance_travelled == pytest.approx(1.0)

    def test_cannot_activate_while_active(self):
        robot = Robot(robot_id=0, position=Point(0, 0))
        robot.begin_activation(0.0)
        with pytest.raises(RuntimeError):
            robot.begin_activation(1.0)

    def test_cannot_move_from_idle(self):
        robot = Robot(robot_id=0, position=Point(0, 0))
        with pytest.raises(RuntimeError):
            robot.begin_move((0, 0), (1, 0), 0.0, 1.0)

    def test_cannot_finish_when_not_moving(self):
        robot = Robot(robot_id=0, position=Point(0, 0))
        with pytest.raises(RuntimeError):
            robot.finish_move()

    def test_move_must_end_after_start(self):
        robot = Robot(robot_id=0, position=Point(0, 0))
        robot.begin_activation(0.0)
        with pytest.raises(ValueError):
            robot.begin_move((0, 0), (1, 0), start_time=2.0, end_time=1.0)


class TestInterpolation:
    def _moving_robot(self):
        robot = Robot(robot_id=0, position=Point(0, 0))
        robot.begin_activation(0.0)
        robot.begin_move((0, 0), (2, 0), start_time=1.0, end_time=3.0)
        return robot

    def test_position_before_move_start(self):
        robot = self._moving_robot()
        assert robot.position_at(0.5) == Point(0, 0)

    def test_position_mid_move(self):
        robot = self._moving_robot()
        assert robot.position_at(2.0) == Point(1.0, 0.0)

    def test_position_after_move_end(self):
        robot = self._moving_robot()
        assert robot.position_at(10.0) == Point(2.0, 0.0)

    def test_position_when_idle_is_static(self):
        robot = Robot(robot_id=0, position=Point(3, 4))
        assert robot.position_at(100.0) == Point(3, 4)

    def test_instantaneous_move(self):
        robot = Robot(robot_id=0, position=Point(0, 0))
        robot.begin_activation(0.0)
        robot.begin_move((0, 0), (1, 1), start_time=1.0, end_time=1.0)
        assert robot.position_at(1.0) == Point(1, 1)


class TestCrash:
    def test_crash_while_idle(self):
        robot = Robot(robot_id=0, position=Point(0, 0))
        robot.crash()
        assert robot.crashed
        assert robot.is_idle()

    def test_crash_mid_move_stops_at_current_position(self):
        robot = Robot(robot_id=0, position=Point(0, 0))
        robot.begin_activation(0.0)
        robot.begin_move((0, 0), (2, 0), start_time=0.0, end_time=2.0)
        robot.crash()
        assert robot.crashed
        assert robot.is_idle()
        # The pending move is discarded; the robot stays where it was last committed.
        assert robot.position_at(10.0) == robot.position
