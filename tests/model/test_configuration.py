"""Tests for the Configuration type."""

import math

import numpy as np
import pytest

from repro.geometry import Point
from repro.model import Configuration


SQUARE = Configuration.of([(0, 0), (0.9, 0), (0.9, 0.9), (0, 0.9)], 1.0)


class TestBasics:
    def test_length_and_indexing(self):
        assert len(SQUARE) == 4
        assert SQUARE[0] == Point(0, 0)

    def test_positive_range_required(self):
        with pytest.raises(ValueError):
            Configuration.of([(0, 0)], 0.0)

    def test_as_array(self):
        arr = SQUARE.as_array()
        assert arr.shape == (4, 2)
        assert arr[2, 0] == pytest.approx(0.9)

    def test_with_positions_keeps_range(self):
        other = SQUARE.with_positions([(0, 0), (1, 1)])
        assert other.visibility_range == 1.0
        assert len(other) == 2

    def test_translated(self):
        moved = SQUARE.translated((1, 2))
        assert moved[0] == Point(1, 2)
        assert moved.hull_diameter() == pytest.approx(SQUARE.hull_diameter())

    def test_scaled_about_centroid(self):
        shrunk = SQUARE.scaled(0.5)
        assert shrunk.hull_diameter() == pytest.approx(SQUARE.hull_diameter() / 2)
        assert shrunk.centroid().is_close(SQUARE.centroid())


class TestGraph:
    def test_edges_of_square(self):
        edges = SQUARE.edges()
        assert (0, 1) in edges and (1, 2) in edges
        # The diagonal is longer than the range.
        assert (0, 2) not in edges

    def test_strong_edges_are_subset(self):
        assert SQUARE.strong_edges() <= SQUARE.edges()

    def test_connectivity(self):
        assert SQUARE.is_connected()
        sparse = Configuration.of([(0, 0), (5, 0)], 1.0)
        assert not sparse.is_connected()
        assert len(sparse.components()) == 2

    def test_degree(self):
        assert SQUARE.degree(0) == 2

    def test_preserves_edges_of(self):
        contracted = SQUARE.scaled(0.5)
        assert contracted.preserves_edges_of(SQUARE)
        exploded = SQUARE.scaled(3.0)
        assert not exploded.preserves_edges_of(SQUARE)
        assert exploded.broken_edges_of(SQUARE)


class TestGeometry:
    def test_hull_measures(self):
        assert SQUARE.hull_diameter() == pytest.approx(0.9 * math.sqrt(2))
        assert SQUARE.hull_perimeter() == pytest.approx(3.6)
        assert SQUARE.hull_radius() == pytest.approx(0.9 * math.sqrt(2) / 2)

    def test_bounding_box_and_centroid(self):
        box = SQUARE.bounding_box()
        assert box.width() == pytest.approx(0.9)
        assert SQUARE.centroid() == Point(0.45, 0.45)

    def test_min_pairwise_distance(self):
        assert SQUARE.min_pairwise_distance() == pytest.approx(0.9)
        assert Configuration.of([(0, 0)], 1.0).min_pairwise_distance() == 0.0

    def test_within_epsilon(self):
        assert not SQUARE.within_epsilon(0.5)
        tiny = SQUARE.scaled(0.01)
        assert tiny.within_epsilon(0.5)

    def test_multiplicity_points(self):
        config = Configuration.of([(0, 0), (0, 0), (1, 0)], 1.0)
        multiplicities = config.multiplicity_points()
        assert len(multiplicities) == 1
        point, count = multiplicities[0]
        assert point == Point(0, 0) and count == 2
        assert SQUARE.multiplicity_points() == []
