"""Tests for visibility graphs, connectivity and cohesion predicates."""

import pytest

from repro.geometry import Point
from repro.model import (
    broken_edges,
    connected_components,
    edges_preserved,
    is_connected,
    is_linearly_separable,
    max_edge_stretch,
    neighbours_of,
    strong_visibility_edges,
    visibility_edges,
)


LINE = [Point(0, 0), Point(0.8, 0), Point(1.6, 0), Point(2.4, 0)]


class TestEdges:
    def test_visibility_edges_of_line(self):
        edges = visibility_edges(LINE, 1.0)
        assert edges == {(0, 1), (1, 2), (2, 3)}

    def test_edge_at_exact_range_included(self):
        edges = visibility_edges([Point(0, 0), Point(1.0, 0)], 1.0)
        assert edges == {(0, 1)}

    def test_strong_visibility_is_half_range(self):
        pts = [Point(0, 0), Point(0.4, 0), Point(1.0, 0)]
        assert strong_visibility_edges(pts, 1.0) == {(0, 1)}

    def test_no_edges_for_single_robot(self):
        assert visibility_edges([Point(0, 0)], 1.0) == set()

    def test_neighbours_of(self):
        assert neighbours_of(1, LINE, 1.0) == [0, 2]


class TestConnectivity:
    def test_connected_line(self):
        assert is_connected(LINE, 1.0)

    def test_disconnected_when_range_too_small(self):
        assert not is_connected(LINE, 0.5)

    def test_single_robot_is_connected(self):
        assert is_connected([Point(0, 0)], 1.0)

    def test_connected_components(self):
        pts = [Point(0, 0), Point(0.5, 0), Point(10, 0), Point(10.5, 0)]
        components = connected_components(len(pts), visibility_edges(pts, 1.0))
        assert len(components) == 2
        assert {0, 1} in components and {2, 3} in components


class TestCohesion:
    def test_edges_preserved_when_nothing_moves(self):
        edges = visibility_edges(LINE, 1.0)
        assert edges_preserved(edges, LINE, 1.0)

    def test_edges_broken_when_pair_separates(self):
        edges = visibility_edges(LINE, 1.0)
        moved = list(LINE)
        moved[3] = Point(3.0, 0)
        assert not edges_preserved(edges, moved, 1.0)
        assert broken_edges(edges, moved, 1.0) == {(2, 3)}

    def test_new_edges_do_not_matter(self):
        edges = visibility_edges(LINE, 1.0)
        moved = [Point(0, 0), Point(0.4, 0), Point(0.8, 0), Point(1.2, 0)]
        assert edges_preserved(edges, moved, 1.0)

    def test_max_edge_stretch(self):
        edges = {(0, 1), (1, 2)}
        assert max_edge_stretch(edges, LINE) == pytest.approx(0.8)
        assert max_edge_stretch(set(), LINE) == 0.0


class TestLinearSeparability:
    def test_separable_groups(self):
        pts = [Point(0, 0), Point(0.2, 0.1), Point(5, 5), Point(5.5, 5.2)]
        assert is_linearly_separable(pts, [0, 1], [2, 3])

    def test_interleaved_groups_not_separable(self):
        pts = [Point(0, 0), Point(2, 0), Point(1, 0.1), Point(3, 0.1)]
        # Group A surrounds group B along the x axis.
        assert not is_linearly_separable(pts, [0, 3], [1, 2])

    def test_empty_group_is_trivially_separable(self):
        pts = [Point(0, 0), Point(1, 1)]
        assert is_linearly_separable(pts, [], [0, 1])
