"""Tests for snapshots and snapshot construction."""

import math

import numpy as np
import pytest

from repro.geometry import LocalFrame, Point
from repro.model import PerceptionModel, Snapshot, build_snapshot


class TestSnapshotQueries:
    def test_basic_queries(self):
        snap = Snapshot(neighbours=(Point(1, 0), Point(0, 0.4)))
        assert snap.has_neighbours()
        assert snap.neighbour_count() == 2
        assert snap.farthest_distance() == pytest.approx(1.0)
        assert snap.nearest_distance() == pytest.approx(0.4)
        assert snap.farthest_neighbour() == Point(1, 0)

    def test_empty_snapshot(self):
        snap = Snapshot(neighbours=())
        assert not snap.has_neighbours()
        assert snap.farthest_distance() == 0.0
        assert snap.farthest_neighbour() is None

    def test_with_self_prepends_origin(self):
        snap = Snapshot(neighbours=(Point(1, 0),))
        pts = snap.with_self()
        assert pts[0] == Point(0, 0)
        assert len(pts) == 2

    def test_distant_and_close_neighbours(self):
        snap = Snapshot(neighbours=(Point(1.0, 0), Point(0.3, 0), Point(0.0, 0.8)))
        distant = snap.distant_neighbours()
        close = snap.close_neighbours()
        assert Point(1.0, 0) in distant
        assert Point(0.0, 0.8) in distant
        assert Point(0.3, 0) in close

    def test_farthest_neighbour_is_always_distant(self):
        snap = Snapshot(neighbours=(Point(0.2, 0),))
        assert snap.distant_neighbours() == [Point(0.2, 0)]

    def test_multiplicities_must_match(self):
        with pytest.raises(ValueError):
            Snapshot(neighbours=(Point(1, 0),), multiplicities=(1, 2))


class TestBuildSnapshot:
    def test_visibility_filtering(self):
        snap = build_snapshot((0, 0), [(0.5, 0), (2.0, 0)], visibility_range=1.0)
        assert snap.neighbour_count() == 1
        assert snap.neighbours[0] == Point(0.5, 0)

    def test_positions_are_relative(self):
        snap = build_snapshot((10, 10), [(10.5, 10.0)], visibility_range=1.0)
        assert snap.neighbours[0] == Point(0.5, 0.0)

    def test_coincident_robot_excluded(self):
        snap = build_snapshot((1, 1), [(1, 1), (1.5, 1)], visibility_range=1.0)
        assert snap.neighbour_count() == 1

    def test_coincident_others_collapse_without_multiplicity(self):
        snap = build_snapshot((0, 0), [(0.5, 0), (0.5, 0)], visibility_range=1.0)
        assert snap.neighbour_count() == 1
        assert snap.multiplicities is None

    def test_multiplicity_detection(self):
        snap = build_snapshot(
            (0, 0), [(0.5, 0), (0.5, 0), (0, 0.5)], visibility_range=1.0,
            multiplicity_detection=True,
        )
        assert snap.neighbour_count() == 2
        assert sorted(snap.multiplicities) == [1, 2]

    def test_range_revealed_only_when_requested(self):
        hidden = build_snapshot((0, 0), [(0.5, 0)], visibility_range=1.0)
        shown = build_snapshot((0, 0), [(0.5, 0)], visibility_range=1.0, reveal_range=True)
        assert hidden.visibility_range is None
        assert shown.visibility_range == 1.0

    def test_frame_is_applied(self):
        frame = LocalFrame(Point(0, 0), rotation=math.pi / 2)
        snap = build_snapshot((0, 0), [(1.0, 0.0)], visibility_range=2.0, frame=frame)
        # A robot to the east appears to the south in a frame rotated by +90 degrees.
        assert snap.neighbours[0].is_close(Point(0.0, -1.0), eps=1e-12)

    def test_perception_error_applied(self, rng):
        model = PerceptionModel(distance_error=0.1, bias="over")
        snap = build_snapshot((0, 0), [(1.0, 0.0)], visibility_range=2.0, perception=model, rng=rng)
        assert snap.neighbours[0].norm() == pytest.approx(1.1)

    def test_visibility_uses_true_positions_not_perceived(self, rng):
        # A robot exactly at the range is visible even if perception would
        # over-estimate its distance: sensing reach is physical.
        model = PerceptionModel(distance_error=0.1, bias="over")
        snap = build_snapshot((0, 0), [(1.0, 0.0)], visibility_range=1.0, perception=model, rng=rng)
        assert snap.neighbour_count() == 1
        assert snap.neighbours[0].norm() > 1.0

    def test_metadata_fields(self):
        snap = build_snapshot(
            (0, 0), [(0.5, 0)], visibility_range=1.0, k_bound=3, time=2.5, robot_id=7
        )
        assert snap.k_bound == 3
        assert snap.time == 2.5
        assert snap.robot_id == 7
