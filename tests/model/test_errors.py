"""Tests for the perception and motion error models."""

import math

import numpy as np
import pytest

from repro.geometry import Point, SymmetricDistortion
from repro.model import MotionModel, PerceptionModel


class TestPerceptionModel:
    def test_exact_model_is_identity(self):
        model = PerceptionModel.exact()
        v = Point(0.3, -0.8)
        assert model.perceive_vector(v) == v
        assert model.is_exact()

    def test_validation(self):
        with pytest.raises(ValueError):
            PerceptionModel(distance_error=1.5)
        with pytest.raises(ValueError):
            PerceptionModel(distance_error=-0.1)
        with pytest.raises(ValueError):
            PerceptionModel(bias="sideways")

    def test_random_distance_error_is_bounded(self, rng):
        model = PerceptionModel(distance_error=0.1, bias="random")
        v = Point(1.0, 0.0)
        for _ in range(100):
            perceived = model.perceive_vector(v, rng)
            assert 0.9 - 1e-12 <= perceived.norm() <= 1.1 + 1e-12
            # Direction is untouched when there is no distortion.
            assert perceived.angle() == pytest.approx(0.0, abs=1e-12)

    def test_over_and_under_bias(self):
        v = Point(2.0, 0.0)
        over = PerceptionModel(distance_error=0.05, bias="over").perceive_vector(v)
        under = PerceptionModel(distance_error=0.05, bias="under").perceive_vector(v)
        assert over.norm() == pytest.approx(2.1)
        assert under.norm() == pytest.approx(1.9)

    def test_distortion_preserves_length(self, rng):
        model = PerceptionModel(
            distortion=SymmetricDistortion(amplitude=0.2, frequency=2)
        )
        v = Point.polar(0.7, 1.2)
        perceived = model.perceive_vector(v, rng)
        assert perceived.norm() == pytest.approx(0.7)
        assert model.skew() == pytest.approx(0.2)

    def test_zero_vector_untouched(self, rng):
        model = PerceptionModel(distance_error=0.1)
        assert model.perceive_vector(Point(0, 0), rng) == Point(0, 0)


class TestMotionModel:
    def test_rigid_model(self):
        model = MotionModel.rigid()
        assert model.is_rigid()
        end = model.realize((0, 0), (1, 0))
        assert end == Point(1, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MotionModel(xi=0.0)
        with pytest.raises(ValueError):
            MotionModel(xi=1.5)
        with pytest.raises(ValueError):
            MotionModel(deviation="cubic")
        with pytest.raises(ValueError):
            MotionModel(coefficient=-1.0)

    def test_fraction_clamped_to_xi(self):
        model = MotionModel(xi=0.5)
        assert model.clamp_fraction(0.1) == 0.5
        assert model.clamp_fraction(0.7) == 0.7
        assert model.clamp_fraction(2.0) == 1.0
        end = model.realize((0, 0), (1, 0), requested_fraction=0.1)
        assert end == Point(0.5, 0.0)

    def test_zero_length_move(self):
        model = MotionModel(xi=0.5, deviation="linear", coefficient=1.0)
        assert model.realize((1, 1), (1, 1)) == Point(1, 1)

    def test_linear_deviation_bound(self, rng):
        model = MotionModel(deviation="linear", coefficient=0.2, bias="random")
        start, target = Point(0, 0), Point(1, 0)
        for _ in range(50):
            end = model.realize(start, target, rng=rng)
            # Lateral deviation is bounded by coefficient * planned distance.
            assert abs(end.y) <= 0.2 + 1e-12
            assert end.x == pytest.approx(1.0)

    def test_quadratic_deviation_is_smaller_for_short_moves(self):
        model = MotionModel(deviation="quadratic", coefficient=1.0, scale=1.0, bias="adversarial")
        short = model.realize((0, 0), (0.1, 0))
        assert abs(short.y) == pytest.approx(0.01)
        long = model.realize((0, 0), (1.0, 0))
        assert abs(long.y) == pytest.approx(1.0)

    def test_adversarial_bias_always_maximal(self):
        model = MotionModel(deviation="linear", coefficient=0.3, bias="adversarial")
        end = model.realize((0, 0), (2, 0))
        assert abs(end.y) == pytest.approx(0.6)

    def test_max_deviation_helper(self):
        assert MotionModel().max_deviation(1.0) == 0.0
        assert MotionModel(deviation="linear", coefficient=0.5).max_deviation(2.0) == 1.0
        assert MotionModel(deviation="quadratic", coefficient=0.5, scale=2.0).max_deviation(2.0) == 1.0
