"""Tests for activation records and phase bookkeeping."""

import pytest

from repro.model import Activation, Phase
from repro.model.types import ActivationRecord


class TestPhase:
    def test_active_and_motile_flags(self):
        assert not Phase.IDLE.is_active()
        assert Phase.COMPUTING.is_active()
        assert Phase.MOVING.is_active()
        assert Phase.MOVING.is_motile()
        assert not Phase.COMPUTING.is_motile()


class TestActivation:
    def test_derived_times(self):
        a = Activation(robot_id=0, look_time=1.0, compute_duration=0.5, move_duration=2.0)
        assert a.move_start_time == pytest.approx(1.5)
        assert a.end_time == pytest.approx(3.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            Activation(robot_id=0, look_time=-1.0)
        with pytest.raises(ValueError):
            Activation(robot_id=0, look_time=0.0, compute_duration=-0.1)
        with pytest.raises(ValueError):
            Activation(robot_id=0, look_time=0.0, progress_fraction=0.0)
        with pytest.raises(ValueError):
            Activation(robot_id=0, look_time=0.0, progress_fraction=1.5)

    def test_overlaps(self):
        a = Activation(robot_id=0, look_time=0.0, move_duration=2.0)
        b = Activation(robot_id=1, look_time=1.0, move_duration=2.0)
        c = Activation(robot_id=1, look_time=5.0, move_duration=1.0)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_contains_nested_interval(self):
        outer = Activation(robot_id=0, look_time=0.0, move_duration=10.0)
        inner = Activation(robot_id=1, look_time=2.0, move_duration=1.0)
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_starts_within(self):
        outer = Activation(robot_id=0, look_time=0.0, move_duration=10.0)
        inner = Activation(robot_id=1, look_time=2.0, move_duration=100.0)
        before = Activation(robot_id=1, look_time=20.0, move_duration=1.0)
        assert inner.starts_within(outer)
        assert not before.starts_within(outer)

    def test_record_carries_robot_id(self):
        a = Activation(robot_id=3, look_time=0.0)
        record = ActivationRecord(activation=a)
        assert record.robot_id == 3
