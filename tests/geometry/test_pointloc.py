"""Pins for the build-once point-location layer.

Every locator verdict must equal the scalar predicate it replaces —
byte-for-byte, not approximately — because the engine's bit-identity
contract flows through these answers.  The tests sweep random disk
families (clustered and scattered, below and above the block size) and
compare whole verdict arrays against literal ``Disk.contains`` loops.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.geometry.disk import Disk
from repro.geometry.point import Point
from repro.geometry.pointloc import (
    BLOCK_SIZE,
    DiskIntersectionLocator,
    DiskUnionLocator,
    HalfplaneFan,
    points_in_all_disks,
    points_in_any_disk,
)
from repro.geometry.tolerances import EPS


def _random_disks(rng, count, *, clustered):
    scale = 0.3 if clustered else 3.0
    return [
        Disk(Point(float(x), float(y)), float(r))
        for x, y, r in zip(
            rng.normal(scale=scale, size=count),
            rng.normal(scale=scale, size=count),
            rng.uniform(0.2, 2.5, size=count),
        )
    ]


def _query_cloud(rng, queries):
    px = rng.normal(scale=2.0, size=queries)
    py = rng.normal(scale=2.0, size=queries)
    return px, py


class TestDiskLocators:
    @pytest.mark.parametrize("count", [1, 3, BLOCK_SIZE, 3 * BLOCK_SIZE + 2])
    @pytest.mark.parametrize("clustered", [True, False])
    @pytest.mark.parametrize("eps", [0.0, EPS, 1e-3])
    def test_verdicts_match_scalar_loops(self, count, clustered, eps):
        rng = np.random.default_rng(count * 7 + clustered)
        disks = _random_disks(rng, count, clustered=clustered)
        px, py = _query_cloud(rng, 512)
        inter = DiskIntersectionLocator(disks).contains_array(px, py, eps=eps)
        union = DiskUnionLocator(disks).contains_array(px, py, eps=eps)
        for i, (x, y) in enumerate(zip(px, py)):
            point = Point(float(x), float(y))
            assert inter[i] == all(d.contains(point, eps=eps) for d in disks)
            assert union[i] == any(d.contains(point, eps=eps) for d in disks)

    def test_boundary_queries_are_exact(self):
        """Points constructed on/near disk boundaries fall to the exact path."""
        disks = [Disk(Point(0.0, 0.0), 1.0), Disk(Point(0.5, 0.0), 1.0)]
        angles = np.linspace(0.0, 2.0 * math.pi, 257)
        for radius in (1.0 - 1e-12, 1.0, 1.0 + 1e-12, 1.0 + EPS):
            px = radius * np.cos(angles)
            py = radius * np.sin(angles)
            inter = DiskIntersectionLocator(disks).contains_array(px, py)
            union = DiskUnionLocator(disks).contains_array(px, py)
            for i, (x, y) in enumerate(zip(px, py)):
                point = Point(float(x), float(y))
                assert inter[i] == all(d.contains(point) for d in disks)
                assert union[i] == any(d.contains(point) for d in disks)

    def test_empty_families(self):
        px = np.array([0.0, 5.0])
        py = np.array([0.0, -5.0])
        assert DiskIntersectionLocator([]).contains_array(px, py).all()
        assert not DiskUnionLocator([]).contains_array(px, py).any()
        assert DiskIntersectionLocator([]).contains(Point(0.0, 0.0))
        assert not DiskUnionLocator([]).contains(Point(0.0, 0.0))

    def test_scalar_contains_matches_array(self):
        rng = np.random.default_rng(3)
        disks = _random_disks(rng, 5, clustered=True)
        locator = DiskIntersectionLocator(disks)
        for x, y in zip(*_query_cloud(rng, 64)):
            point = Point(float(x), float(y))
            assert locator.contains(point) == all(d.contains(point) for d in disks)

    def test_one_shot_helpers(self):
        rng = np.random.default_rng(9)
        disks = _random_disks(rng, 6, clustered=False)
        px, py = _query_cloud(rng, 128)
        np.testing.assert_array_equal(
            points_in_all_disks(disks, px, py),
            DiskIntersectionLocator(disks).contains_array(px, py),
        )
        np.testing.assert_array_equal(
            points_in_any_disk(disks, px, py),
            DiskUnionLocator(disks).contains_array(px, py),
        )


class TestHalfplaneFan:
    def _reference(self, directions, px, py):
        return np.array(
            [
                all(x * d.x + y * d.y > 0.0 for d in directions)
                for x, y in zip(px, py)
            ]
        )

    @pytest.mark.parametrize("count", [1, 2, 5, 17])
    def test_matches_literal_dot_loop(self, count):
        rng = np.random.default_rng(count)
        angles = rng.uniform(0.0, 0.9 * math.pi, size=count)
        directions = [
            Point(math.cos(a) * s, math.sin(a) * s)
            for a, s in zip(angles, rng.uniform(0.1, 3.0, size=count))
        ]
        fan = HalfplaneFan(directions)
        px, py = _query_cloud(rng, 512)
        np.testing.assert_array_equal(
            fan.contains_array(px, py), self._reference(directions, px, py)
        )

    def test_wide_fan_without_halfplane_certificate(self):
        """Directions spanning more than a half-plane: no certificate, all exact."""
        directions = [Point(1.0, 0.0), Point(-1.0, 0.1), Point(0.0, -1.0)]
        rng = np.random.default_rng(1)
        px, py = _query_cloud(rng, 256)
        fan = HalfplaneFan(directions)
        np.testing.assert_array_equal(
            fan.contains_array(px, py), self._reference(directions, px, py)
        )

    def test_boundary_dots_rejected_exactly(self):
        """A query orthogonal to a fan direction has dot == 0.0: strict > fails."""
        directions = [Point(1.0, 0.0), Point(0.0, 1.0)]
        fan = HalfplaneFan(directions)
        px = np.array([0.0, 1.0, 1.0])
        py = np.array([1.0, 0.0, 1.0])
        np.testing.assert_array_equal(
            fan.contains_array(px, py), np.array([False, False, True])
        )

    def test_empty_fan_accepts_everything(self):
        px, py = np.array([0.0, 3.0]), np.array([0.0, -1.0])
        assert HalfplaneFan([]).contains_array(px, py).all()

    def test_scalar_contains_matches(self):
        directions = [Point(1.0, 0.2), Point(0.6, 0.8)]
        fan = HalfplaneFan(directions)
        for point in (Point(1.0, 1.0), Point(-1.0, 0.0), Point(0.5, -0.2)):
            assert fan.contains(point) == all(
                point.x * d.x + point.y * d.y > 0.0 for d in directions
            )
