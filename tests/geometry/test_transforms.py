"""Tests for local frames and symmetric angular distortions."""

import math

import numpy as np
import pytest

from repro.geometry import LocalFrame, Point, SymmetricDistortion, random_frame


class TestLocalFrame:
    def test_round_trip_identity(self):
        frame = LocalFrame(Point(2, 3), rotation=0.7, reflected=True, scale=2.0)
        p = Point(1.3, -0.4)
        assert frame.to_global(frame.to_local(p)).is_close(p, eps=1e-12)
        assert frame.to_local(frame.to_global(p)).is_close(p, eps=1e-12)

    def test_rotation_only(self):
        frame = LocalFrame(Point(0, 0), rotation=math.pi / 2)
        local = frame.to_local(Point(0, 1))
        assert local.is_close(Point(1, 0), eps=1e-12)

    def test_translation_only(self):
        frame = LocalFrame(Point(5, 5))
        assert frame.to_local(Point(6, 7)) == Point(1, 2)

    def test_reflection_flips_orientation(self):
        frame = LocalFrame(Point(0, 0), reflected=True)
        a, b, c = Point(0, 0), Point(1, 0), Point(0, 1)
        cross_before = (b - a).cross(c - a)
        la, lb, lc = frame.to_local(a), frame.to_local(b), frame.to_local(c)
        cross_after = (lb - la).cross(lc - la)
        assert cross_before * cross_after < 0

    def test_scaling_preserves_direction(self):
        frame = LocalFrame(Point(0, 0), scale=2.0)
        assert frame.to_local(Point(4, 0)) == Point(2, 0)

    def test_zero_scale_rejected(self):
        with pytest.raises(ValueError):
            LocalFrame(Point(0, 0), scale=0.0)

    def test_distance_preserved_without_scale(self):
        frame = LocalFrame(Point(1, 2), rotation=1.1, reflected=True)
        p, q = Point(0, 0), Point(3, 4)
        assert frame.to_local(p).distance_to(frame.to_local(q)) == pytest.approx(5.0)

    def test_many_helpers(self):
        frame = LocalFrame(Point(1, 1), rotation=0.3)
        points = [Point(0, 0), Point(2, 2)]
        locals_ = frame.to_local_many(points)
        back = frame.to_global_many(locals_)
        for original, restored in zip(points, back):
            assert original.is_close(restored, eps=1e-12)

    def test_random_frame_respects_reflection_flag(self, rng):
        frame = random_frame(rng, allow_reflection=False)
        assert frame.reflected is False


class TestSymmetricDistortion:
    def test_identity_when_amplitude_zero(self):
        distortion = SymmetricDistortion(amplitude=0.0)
        assert distortion.apply_angle(1.234) == 1.234
        assert distortion.apply_vector(Point(1, 2)) == Point(1, 2)

    def test_amplitude_bounds(self):
        with pytest.raises(ValueError):
            SymmetricDistortion(amplitude=1.0)
        with pytest.raises(ValueError):
            SymmetricDistortion(amplitude=-0.1)

    def test_frequency_must_be_even(self):
        with pytest.raises(ValueError):
            SymmetricDistortion(amplitude=0.1, frequency=3)

    def test_symmetry_property(self):
        distortion = SymmetricDistortion(amplitude=0.3, frequency=4, phase=0.2)
        assert distortion.is_symmetric()

    def test_skew_is_bounded_by_amplitude(self):
        distortion = SymmetricDistortion(amplitude=0.2, frequency=2)
        assert distortion.max_observed_skew() <= 0.2 + 1e-9
        assert distortion.skew() == pytest.approx(0.2)

    def test_vector_length_preserved(self):
        distortion = SymmetricDistortion(amplitude=0.3, frequency=2)
        v = Point(3, 4)
        assert distortion.apply_vector(v).norm() == pytest.approx(5.0)

    def test_direction_changes_by_bounded_amount(self):
        distortion = SymmetricDistortion(amplitude=0.3, frequency=2)
        v = Point.polar(1.0, 0.7)
        distorted = distortion.apply_vector(v)
        delta = abs(distorted.angle() - v.angle())
        assert delta <= 0.3 / 2 + 1e-9  # amplitude / frequency bounds the shift
