"""Tests for convex hulls and hull-based measures."""

import math

import numpy as np
import pytest

from repro.geometry import (
    ConvexHull,
    Point,
    convex_hull,
    hull_diameter,
    hull_perimeter,
    hull_radius,
    hulls_nested,
)


class TestConvexHullConstruction:
    def test_square_hull(self):
        pts = [(0, 0), (1, 0), (1, 1), (0, 1), (0.5, 0.5)]
        hull = convex_hull(pts)
        assert len(hull) == 4
        assert Point(0.5, 0.5) not in hull

    def test_collinear_input_returns_extremes(self):
        hull = convex_hull([(0, 0), (1, 0), (2, 0), (3, 0)])
        assert len(hull) == 2
        assert Point(0, 0) in hull and Point(3, 0) in hull

    def test_single_point(self):
        assert convex_hull([(1, 1)]) == [Point(1, 1)]

    def test_duplicates_are_removed(self):
        hull = convex_hull([(0, 0), (0, 0), (1, 0), (1, 0), (0, 1)])
        assert len(hull) == 3

    def test_counter_clockwise_orientation(self):
        hull = convex_hull([(0, 0), (2, 0), (2, 2), (0, 2)])
        area2 = sum(hull[i].cross(hull[(i + 1) % len(hull)]) for i in range(len(hull)))
        assert area2 > 0


class TestHullMeasures:
    def test_square_measures(self):
        hull = ConvexHull.of([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert hull.perimeter() == pytest.approx(4.0)
        assert hull.area() == pytest.approx(1.0)
        assert hull.diameter() == pytest.approx(math.sqrt(2))
        assert hull.centroid() == Point(0.5, 0.5)

    def test_degenerate_measures(self):
        segment_hull = ConvexHull.of([(0, 0), (2, 0)])
        assert segment_hull.perimeter() == pytest.approx(4.0)  # there and back
        assert segment_hull.area() == 0.0
        point_hull = ConvexHull.of([(1, 1)])
        assert point_hull.perimeter() == 0.0
        assert point_hull.diameter() == 0.0

    def test_module_level_helpers(self):
        pts = [(0, 0), (2, 0), (2, 2), (0, 2)]
        assert hull_perimeter(pts) == pytest.approx(8.0)
        assert hull_diameter(pts) == pytest.approx(2 * math.sqrt(2))
        assert hull_radius(pts) == pytest.approx(math.sqrt(2))


class TestContainment:
    def test_contains_interior_boundary_and_exterior(self):
        hull = ConvexHull.of([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert hull.contains((1, 1))
        assert hull.contains((0, 1))  # on an edge
        assert hull.contains((2, 2))  # a vertex
        assert not hull.contains((3, 1))

    def test_contains_for_degenerate_hulls(self):
        segment_hull = ConvexHull.of([(0, 0), (2, 0)])
        assert segment_hull.contains((1, 0))
        assert not segment_hull.contains((1, 0.1))
        point_hull = ConvexHull.of([(1, 1)])
        assert point_hull.contains((1, 1))
        assert not point_hull.contains((1.2, 1))

    def test_hull_nesting(self):
        outer = [(0, 0), (4, 0), (4, 4), (0, 4)]
        inner = [(1, 1), (2, 1), (1.5, 2)]
        assert hulls_nested(outer, inner)
        assert not hulls_nested(inner, outer)

    def test_distance_to_point(self):
        hull = ConvexHull.of([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert hull.distance_to_point((1, 1)) == 0.0
        assert hull.distance_to_point((3, 1)) == pytest.approx(1.0)
        assert hull.distance_to_point((3, 3)) == pytest.approx(math.sqrt(2))


class TestShrinkingUnderContraction:
    def test_contracting_points_shrinks_hull(self):
        rng = np.random.default_rng(3)
        pts = [Point(float(x), float(y)) for x, y in rng.normal(size=(20, 2))]
        centre = Point(0, 0)
        contracted = [centre + (p - centre) * 0.5 for p in pts]
        assert hulls_nested(pts, contracted)
        assert hull_perimeter(contracted) <= hull_perimeter(pts) + 1e-12
        assert hull_diameter(contracted) <= hull_diameter(pts) + 1e-12
