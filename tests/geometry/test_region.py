"""Tests for the paper's reachable region R^r_{Y0}(X0, X1) and offset disks."""

import math

import numpy as np
import pytest

from repro.geometry import Disk, Point, ReachableRegion, offset_disk


class TestOffsetDisk:
    def test_center_lies_toward_neighbour(self):
        disk = offset_disk((0, 0), (1, 0), 0.125)
        assert disk.center == Point(0.125, 0.0)
        assert disk.radius == pytest.approx(0.125)

    def test_observer_is_on_boundary(self):
        disk = offset_disk((0, 0), (0, 5), 0.2)
        assert disk.on_boundary((0, 0))

    def test_coincident_points_degenerate(self):
        disk = offset_disk((1, 1), (1, 1), 0.5)
        assert disk.radius == 0.0
        assert disk.center == Point(1, 1)

    def test_direction_only_dependence(self):
        # The paper's safe region depends only on the *direction* of a distant
        # neighbour, not on its distance.
        near = offset_disk((0, 0), (0.6, 0.0), 0.125)
        far = offset_disk((0, 0), (0.97, 0.0), 0.125)
        assert near.center == far.center
        assert near.radius == far.radius


class TestStationaryRegion:
    def test_coincides_with_safe_region(self):
        region = ReachableRegion.of((0, 0), (1, 0), (1, 0), 0.125)
        disk = region.coincides_with_safe_region()
        assert disk is not None
        assert disk.center == Point(0.125, 0.0)

    def test_core_membership_matches_disk(self):
        region = ReachableRegion.of((0, 0), (1, 0), (1, 0), 0.125)
        disk = offset_disk((0, 0), (1, 0), 0.125)
        rng = np.random.default_rng(0)
        for _ in range(100):
            p = Point(float(rng.uniform(-0.3, 0.5)), float(rng.uniform(-0.3, 0.3)))
            assert region.in_core(p) == disk.contains(p) or disk.on_boundary(p, eps=1e-6)

    def test_moving_trajectory_has_no_safe_region_equivalent(self):
        region = ReachableRegion.of((0, 0), (1, 0), (1, 0.2), 0.125)
        assert region.coincides_with_safe_region() is None
        assert not region.is_stationary_trajectory()


class TestCoreAndBulge:
    def test_core_contains_all_parametrised_disks(self):
        region = ReachableRegion.of((0, 0), (1, 0), (0.8, 0.6), 0.1)
        for t in np.linspace(0, 1, 11):
            disk = region.core_disk(float(t))
            assert region.in_core(disk.center)
            assert region.in_core(disk.boundary_point(0.3), eps=1e-6)

    def test_bulge_disks_are_four(self):
        region = ReachableRegion.of((0, 0), (1, 0), (0.8, 0.6), 0.1)
        assert len(region.bulge_disks()) == 4

    def test_bulge_degenerate_when_observer_at_endpoint(self):
        region = ReachableRegion.of((0, 0), (0, 0), (1, 0), 0.1)
        assert region.bulge_disks() == []
        assert not region.in_bulge((0.05, 0.0))

    def test_contains_includes_core_and_bulge(self):
        region = ReachableRegion.of((0, 0), (1, 0), (0.7, 0.7), 0.125)
        # The core center toward the start must be inside.
        assert region.contains(region.core_center(0.0))
        # A far away point must be outside.
        assert not region.contains((0.0, -1.0))

    def test_expanded_region_contains_original(self):
        region = ReachableRegion.of((0, 0), (1, 0), (0.9, 0.3), 0.1)
        expanded = region.expanded(0.05)
        rng = np.random.default_rng(1)
        for _ in range(200):
            p = Point(float(rng.uniform(-0.2, 0.5)), float(rng.uniform(-0.3, 0.4)))
            if region.contains(p):
                assert expanded.contains(p, eps=1e-7)


class TestLemma1Containment:
    """Direct unit-level version of the Lemma-1 containment property."""

    @pytest.mark.parametrize("k,j", [(1, 1), (2, 2), (4, 3), (6, 6)])
    def test_sequential_scaled_moves_stay_inside(self, k, j):
        rng = np.random.default_rng(10 * k + j)
        v_y = 1.0
        x0 = Point(0.9, 0.0)
        step = v_y / (8.0 * k)
        position = Point(0.0, 0.0)
        for _ in range(j):
            region = offset_disk(position, x0, step)
            angle = rng.uniform(0, 2 * math.pi)
            position = region.center + Point.polar(region.radius * rng.random(), angle)
        target = ReachableRegion.of((0, 0), x0, x0, j * v_y / (8.0 * k))
        assert target.contains(position, eps=1e-7)
