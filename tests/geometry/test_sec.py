"""Tests for the smallest enclosing circle (Welzl)."""

import math

import numpy as np
import pytest

from repro.geometry import (
    Point,
    critical_points,
    is_valid_enclosing_circle,
    sec_center,
    sec_radius,
    smallest_enclosing_circle,
)


class TestSmallCases:
    def test_single_point(self):
        disk = smallest_enclosing_circle([(2, 3)])
        assert disk.center == Point(2, 3)
        assert disk.radius == 0.0

    def test_two_points_diametral(self):
        disk = smallest_enclosing_circle([(0, 0), (2, 0)])
        assert disk.center == Point(1, 0)
        assert disk.radius == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            smallest_enclosing_circle([])

    def test_right_triangle_uses_hypotenuse(self):
        disk = smallest_enclosing_circle([(0, 0), (2, 0), (0, 2)])
        assert disk.center.x == pytest.approx(1.0)
        assert disk.center.y == pytest.approx(1.0)
        assert disk.radius == pytest.approx(math.sqrt(2))

    def test_equilateral_triangle_uses_circumcircle(self):
        pts = [(0, 0), (1, 0), (0.5, math.sqrt(3) / 2)]
        disk = smallest_enclosing_circle(pts)
        assert disk.radius == pytest.approx(1 / math.sqrt(3))

    def test_obtuse_triangle_uses_longest_side(self):
        disk = smallest_enclosing_circle([(0, 0), (10, 0), (5, 0.1)])
        assert disk.center.x == pytest.approx(5.0)
        assert disk.radius == pytest.approx(5.0, rel=1e-3)

    def test_collinear_points(self):
        disk = smallest_enclosing_circle([(0, 0), (1, 0), (2, 0), (3, 0)])
        assert disk.center == Point(1.5, 0.0)
        assert disk.radius == pytest.approx(1.5)

    def test_duplicate_points(self):
        disk = smallest_enclosing_circle([(0, 0), (0, 0), (2, 0), (2, 0)])
        assert disk.radius == pytest.approx(1.0)


class TestRandomisedCorrectness:
    @pytest.mark.parametrize("n", [5, 10, 30, 100])
    def test_contains_all_points(self, n):
        rng = np.random.default_rng(n)
        points = [Point(float(x), float(y)) for x, y in rng.normal(size=(n, 2))]
        disk = smallest_enclosing_circle(points)
        assert is_valid_enclosing_circle(disk, points)

    @pytest.mark.parametrize("n", [5, 15, 50])
    def test_is_minimal_against_pairwise_and_triple_circles(self, n):
        # The SEC radius can never exceed the radius of any enclosing circle
        # determined by a pair of points; and it must be at least half the diameter.
        rng = np.random.default_rng(100 + n)
        points = [Point(float(x), float(y)) for x, y in rng.uniform(-1, 1, size=(n, 2))]
        disk = smallest_enclosing_circle(points)
        diameter = max(p.distance_to(q) for p in points for q in points)
        assert disk.radius >= diameter / 2.0 - 1e-9
        assert disk.radius <= diameter / math.sqrt(3) + 1e-9  # Jung's theorem in the plane

    def test_seed_independence_of_result(self):
        rng = np.random.default_rng(7)
        points = [Point(float(x), float(y)) for x, y in rng.normal(size=(40, 2))]
        a = smallest_enclosing_circle(points, seed=0)
        b = smallest_enclosing_circle(points, seed=99)
        assert a.radius == pytest.approx(b.radius, rel=1e-9)
        assert a.center.distance_to(b.center) < 1e-7

    def test_points_on_circle(self):
        points = [Point.polar(1.0, 2 * math.pi * i / 12) for i in range(12)]
        disk = smallest_enclosing_circle(points)
        assert disk.radius == pytest.approx(1.0)
        assert disk.center.norm() < 1e-9


class TestHelpers:
    def test_sec_center_and_radius_helpers(self):
        pts = [(0, 0), (2, 0)]
        assert sec_center(pts) == Point(1, 0)
        assert sec_radius(pts) == pytest.approx(1.0)

    def test_critical_points(self):
        pts = [Point(0, 0), Point(2, 0), Point(1, 0.2)]
        disk = smallest_enclosing_circle(pts)
        crit = critical_points(disk, pts)
        assert Point(0, 0) in crit and Point(2, 0) in crit
        assert Point(1, 0.2) not in crit


class TestFloatCorePins:
    """The batched float-core Welzl is pinned bit-identical to sec_center."""

    def test_sec_center_array_matches_sec_center(self):
        from repro.geometry.sec import sec_center_array

        rng = np.random.default_rng(7)
        for m in (1, 2, 3, 4, 7, 15, 40):
            arr = rng.uniform(-2.0, 2.0, size=(m, 2))
            reference = sec_center([Point(float(x), float(y)) for x, y in arr])
            cx, cy = sec_center_array(arr)
            assert (cx, cy) == (reference.x, reference.y)

    def test_sec_centers_batch_matches_per_call(self):
        from repro.geometry.sec import sec_center_array, sec_centers

        rng = np.random.default_rng(3)
        batches = [
            rng.uniform(-1.0, 1.0, size=(int(m), 2))
            for m in rng.integers(1, 20, size=12)
        ]
        out = sec_centers(batches)
        for row, batch in enumerate(batches):
            assert tuple(out[row]) == sec_center_array(batch)

    def test_cache_returns_identical_floats(self):
        from repro.geometry.sec import sec_center_array

        arr = np.random.default_rng(0).uniform(-1.0, 1.0, size=(25, 2))
        first = sec_center_array(arr)
        assert sec_center_array(arr.copy()) == first  # memo hit on equal bytes

    def test_degenerate_sets(self):
        from repro.geometry.sec import sec_center_array

        coincident = np.zeros((5, 2))
        assert sec_center_array(coincident) == (0.0, 0.0)
        collinear = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [3.0, 0.0]])
        reference = sec_center([Point(x, y) for x, y in collinear])
        assert sec_center_array(collinear) == (reference.x, reference.y)
