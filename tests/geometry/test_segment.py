"""Tests for segments, lines and the related predicates."""

import math

import pytest

from repro.geometry import (
    Point,
    Segment,
    clamp_motion,
    collinear,
    distance_point_to_line,
    foot_of_perpendicular,
    orientation,
    perpendicular_bisector_intersection,
)


class TestSegmentBasics:
    def test_length_direction_midpoint(self):
        s = Segment.of((0, 0), (3, 4))
        assert s.length() == pytest.approx(5.0)
        assert s.direction().norm() == pytest.approx(1.0)
        assert s.midpoint() == Point(1.5, 2.0)

    def test_point_at_is_not_clamped(self):
        s = Segment.of((0, 0), (1, 0))
        assert s.point_at(2.0) == Point(2.0, 0.0)

    def test_reversed_and_translate(self):
        s = Segment.of((0, 0), (1, 2))
        assert s.reversed().start == Point(1, 2)
        t = s.translate((1, 1))
        assert t.start == Point(1, 1) and t.end == Point(2, 3)


class TestProjectionAndDistance:
    def test_closest_point_interior(self):
        s = Segment.of((0, 0), (10, 0))
        assert s.closest_point((3, 4)) == Point(3.0, 0.0)

    def test_closest_point_clamps_to_endpoints(self):
        s = Segment.of((0, 0), (1, 0))
        assert s.closest_point((5, 1)) == Point(1.0, 0.0)
        assert s.closest_point((-5, 1)) == Point(0.0, 0.0)

    def test_distance_to_point(self):
        s = Segment.of((0, 0), (10, 0))
        assert s.distance_to_point((5, 3)) == pytest.approx(3.0)
        assert s.distance_to_point((12, 0)) == pytest.approx(2.0)

    def test_contains_point(self):
        s = Segment.of((0, 0), (2, 2))
        assert s.contains_point((1, 1))
        assert not s.contains_point((1, 1.01))

    def test_degenerate_segment(self):
        s = Segment.of((1, 1), (1, 1))
        assert s.distance_to_point((4, 5)) == pytest.approx(5.0)


class TestIntersection:
    def test_crossing_segments(self):
        a = Segment.of((0, 0), (2, 2))
        b = Segment.of((0, 2), (2, 0))
        assert a.intersection(b) == Point(1.0, 1.0)

    def test_non_crossing_segments(self):
        a = Segment.of((0, 0), (1, 0))
        b = Segment.of((0, 1), (1, 1))
        assert a.intersection(b) is None

    def test_parallel_segments(self):
        a = Segment.of((0, 0), (1, 1))
        b = Segment.of((0, 1), (1, 2))
        assert a.intersection(b) is None


class TestLinePredicates:
    def test_distance_point_to_line(self):
        assert distance_point_to_line((0, 5), (0, 0), (1, 0)) == pytest.approx(5.0)
        # Point beyond the defining points still measures to the infinite line.
        assert distance_point_to_line((100, 5), (0, 0), (1, 0)) == pytest.approx(5.0)

    def test_collinear(self):
        assert collinear((0, 0), (1, 1), (2, 2))
        assert not collinear((0, 0), (1, 1), (2, 2.1))

    def test_orientation(self):
        assert orientation((0, 0), (1, 0), (1, 1)) == 1
        assert orientation((0, 0), (1, 0), (1, -1)) == -1
        assert orientation((0, 0), (1, 0), (2, 0)) == 0

    def test_foot_of_perpendicular(self):
        foot = foot_of_perpendicular((3, 4), (0, 0), (10, 0))
        assert foot == Point(3.0, 0.0)

    def test_circumcentre_of_right_triangle(self):
        center = perpendicular_bisector_intersection((0, 0), (2, 0), (0, 2))
        assert center == Point(1.0, 1.0)

    def test_circumcentre_of_collinear_points_is_none(self):
        assert perpendicular_bisector_intersection((0, 0), (1, 0), (2, 0)) is None


class TestClampMotion:
    def test_within_limit_is_unchanged(self):
        assert clamp_motion((0, 0), (1, 0), 2.0) == Point(1.0, 0.0)

    def test_beyond_limit_is_truncated(self):
        assert clamp_motion((0, 0), (10, 0), 2.0) == Point(2.0, 0.0)

    def test_zero_move(self):
        assert clamp_motion((1, 1), (1, 1), 5.0) == Point(1.0, 1.0)
