"""Tests for disks, circle-circle intersections and lens geometry."""

import math

import pytest

from repro.geometry import Disk, Point, disks_common_point, farthest_point_in_disk_from, lens_center


class TestDiskBasics:
    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Disk(Point(0, 0), -1.0)

    def test_contains_closed(self):
        d = Disk(Point(0, 0), 1.0)
        assert d.contains((1.0, 0.0))
        assert d.contains((0.5, 0.5))
        assert not d.contains((1.1, 0.0))

    def test_contains_disk(self):
        outer = Disk(Point(0, 0), 2.0)
        inner = Disk(Point(0.5, 0), 1.0)
        assert outer.contains_disk(inner)
        assert not inner.contains_disk(outer)

    def test_intersects(self):
        a = Disk(Point(0, 0), 1.0)
        assert a.intersects(Disk(Point(2, 0), 1.0))
        assert not a.intersects(Disk(Point(2.5, 0), 1.0))

    def test_on_boundary(self):
        d = Disk(Point(0, 0), 1.0)
        assert d.on_boundary((1, 0))
        assert not d.on_boundary((0.9, 0))

    def test_area_and_scaling(self):
        d = Disk(Point(0, 0), 2.0)
        assert d.area() == pytest.approx(4 * math.pi)
        assert d.scaled(0.5).radius == pytest.approx(1.0)

    def test_boundary_point(self):
        d = Disk(Point(1, 1), 2.0)
        p = d.boundary_point(math.pi / 2)
        assert p.x == pytest.approx(1.0)
        assert p.y == pytest.approx(3.0)


class TestProjectionAndExtremes:
    def test_closest_point_inside_is_itself(self):
        d = Disk(Point(0, 0), 1.0)
        assert d.closest_point_to((0.2, 0.3)) == Point(0.2, 0.3)

    def test_closest_point_outside_projects_to_boundary(self):
        d = Disk(Point(0, 0), 1.0)
        p = d.closest_point_to((3, 0))
        assert p == Point(1.0, 0.0)

    def test_farthest_point_from(self):
        d = Disk(Point(0, 0), 1.0)
        p = d.farthest_point_from((5, 0))
        assert p == Point(-1.0, 0.0)

    def test_farthest_point_from_center_is_deterministic(self):
        d = Disk(Point(0, 0), 1.0)
        p = d.farthest_point_from((0, 0))
        assert abs(p.norm() - 1.0) < 1e-12

    def test_farthest_point_in_disk_from_helper(self):
        point, distance = farthest_point_in_disk_from(Disk(Point(1, 0), 1.0), (0, 0))
        assert point == Point(2.0, 0.0)
        assert distance == pytest.approx(2.0)


class TestCircleIntersections:
    def test_two_intersection_points(self):
        a = Disk(Point(0, 0), 1.0)
        b = Disk(Point(1, 0), 1.0)
        points = a.boundary_intersections(b)
        assert len(points) == 2
        for p in points:
            assert abs(p.norm() - 1.0) < 1e-9
            assert abs(p.distance_to((1, 0)) - 1.0) < 1e-9

    def test_tangent_circles_meet_in_one_point(self):
        a = Disk(Point(0, 0), 1.0)
        b = Disk(Point(2, 0), 1.0)
        points = a.boundary_intersections(b)
        assert len(points) == 1
        assert points[0] == Point(1.0, 0.0)

    def test_disjoint_circles_have_no_intersection(self):
        a = Disk(Point(0, 0), 1.0)
        b = Disk(Point(5, 0), 1.0)
        assert a.boundary_intersections(b) == []

    def test_intersection_area_of_identical_disks(self):
        a = Disk(Point(0, 0), 1.0)
        assert a.intersection_area(Disk(Point(0, 0), 1.0)) == pytest.approx(math.pi)

    def test_intersection_area_of_disjoint_disks_is_zero(self):
        a = Disk(Point(0, 0), 1.0)
        assert a.intersection_area(Disk(Point(3, 0), 1.0)) == 0.0

    def test_intersection_area_is_symmetric(self):
        a = Disk(Point(0, 0), 1.0)
        b = Disk(Point(1, 0), 0.7)
        assert a.intersection_area(b) == pytest.approx(b.intersection_area(a))

    def test_segment_intersection_length(self):
        d = Disk(Point(0, 0), 1.0)
        assert d.segment_intersection_length((-2, 0), (2, 0)) == pytest.approx(2.0)
        assert d.segment_intersection_length((2, 2), (3, 3)) == 0.0
        assert d.segment_intersection_length((0, 0), (0.5, 0)) == pytest.approx(0.5)


class TestLens:
    def test_lens_center_of_equal_disks(self):
        a = Disk(Point(0, 0), 1.0)
        b = Disk(Point(1, 0), 1.0)
        assert lens_center(a, b) == Point(0.5, 0.0)

    def test_lens_center_of_disjoint_disks_is_none(self):
        a = Disk(Point(0, 0), 1.0)
        b = Disk(Point(5, 0), 1.0)
        assert lens_center(a, b) is None

    def test_disks_common_point(self):
        disks = [Disk(Point(0, 0), 1.0), Disk(Point(1, 0), 1.0)]
        assert disks_common_point(disks, (0.5, 0.0))
        assert not disks_common_point(disks, (-0.9, 0.0))
