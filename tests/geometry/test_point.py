"""Tests for the Point/vector primitive."""

import math

import numpy as np
import pytest

from repro.geometry import Point
from repro.geometry.point import (
    array_to_points,
    centroid,
    max_pairwise_distance,
    pairwise_distances,
    points_to_array,
)


class TestConstruction:
    def test_of_accepts_tuple(self):
        assert Point.of((1, 2)) == Point(1.0, 2.0)

    def test_of_accepts_numpy_row(self):
        assert Point.of(np.array([3.0, 4.0])) == Point(3.0, 4.0)

    def test_of_passes_through_point(self):
        p = Point(1.0, 2.0)
        assert Point.of(p) is p

    def test_origin(self):
        assert Point.origin() == Point(0.0, 0.0)

    def test_polar(self):
        p = Point.polar(2.0, math.pi / 2.0)
        assert p.x == pytest.approx(0.0, abs=1e-12)
        assert p.y == pytest.approx(2.0)


class TestAlgebra:
    def test_addition_and_subtraction(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)
        assert Point(3, 4) - (1, 1) == Point(2, 3)

    def test_scalar_multiplication_both_sides(self):
        assert Point(1, 2) * 3 == Point(3, 6)
        assert 3 * Point(1, 2) == Point(3, 6)

    def test_division_and_negation(self):
        assert Point(2, 4) / 2 == Point(1, 2)
        assert -Point(1, -2) == Point(-1, 2)

    def test_iteration_and_indexing(self):
        p = Point(5.0, 6.0)
        assert list(p) == [5.0, 6.0]
        assert p[0] == 5.0 and p[1] == 6.0
        assert len(p) == 2

    def test_dot_and_cross(self):
        assert Point(1, 0).dot(Point(0, 1)) == 0.0
        assert Point(1, 0).cross(Point(0, 1)) == 1.0
        assert Point(0, 1).cross(Point(1, 0)) == -1.0


class TestMetrics:
    def test_norm_and_distance(self):
        assert Point(3, 4).norm() == pytest.approx(5.0)
        assert Point(3, 4).norm_squared() == pytest.approx(25.0)
        assert Point(1, 1).distance_to(Point(4, 5)) == pytest.approx(5.0)

    def test_angle(self):
        assert Point(0, 1).angle() == pytest.approx(math.pi / 2.0)
        assert Point(1, 0).angle_to(Point(1, 5)) == pytest.approx(math.pi / 2.0)

    def test_unit_vector(self):
        u = Point(3, 4).unit()
        assert u.norm() == pytest.approx(1.0)
        assert u.x == pytest.approx(0.6)

    def test_unit_of_zero_vector_raises(self):
        with pytest.raises(ValueError):
            Point(0.0, 0.0).unit()


class TestGeometricHelpers:
    def test_toward_moves_exact_distance(self):
        p = Point(0, 0).toward(Point(10, 0), 3.0)
        assert p == Point(3.0, 0.0)

    def test_toward_coincident_points_stays(self):
        assert Point(1, 1).toward(Point(1, 1), 5.0) == Point(1, 1)

    def test_toward_can_overshoot(self):
        p = Point(0, 0).toward(Point(1, 0), 2.0)
        assert p == Point(2.0, 0.0)

    def test_midpoint_and_lerp(self):
        assert Point(0, 0).midpoint(Point(2, 4)) == Point(1, 2)
        assert Point(0, 0).lerp(Point(2, 4), 0.25) == Point(0.5, 1.0)

    def test_rotation_about_origin(self):
        p = Point(1, 0).rotated(math.pi / 2.0)
        assert p.x == pytest.approx(0.0, abs=1e-12)
        assert p.y == pytest.approx(1.0)

    def test_rotation_about_other_point(self):
        p = Point(2, 0).rotated(math.pi, about=Point(1, 0))
        assert p.x == pytest.approx(0.0, abs=1e-12)
        assert p.y == pytest.approx(0.0, abs=1e-12)

    def test_perpendicular(self):
        assert Point(1, 0).perpendicular() == Point(0, 1)

    def test_is_close(self):
        assert Point(0, 0).is_close(Point(0, 1e-12))
        assert not Point(0, 0).is_close(Point(0, 1e-3))


class TestCollections:
    def test_centroid(self):
        assert centroid([(0, 0), (2, 0), (1, 3)]) == Point(1.0, 1.0)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_points_array_round_trip(self):
        pts = [Point(1, 2), Point(3, 4)]
        arr = points_to_array(pts)
        assert arr.shape == (2, 2)
        assert array_to_points(arr) == pts

    def test_points_to_array_empty(self):
        assert points_to_array([]).shape == (0, 2)

    def test_array_to_points_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            array_to_points(np.zeros((3, 3)))

    def test_pairwise_distances_symmetry(self):
        d = pairwise_distances([(0, 0), (3, 4), (6, 8)])
        assert d[0, 1] == pytest.approx(5.0)
        assert d[1, 0] == pytest.approx(5.0)
        assert d[0, 2] == pytest.approx(10.0)
        assert np.allclose(np.diag(d), 0.0)

    def test_max_pairwise_distance(self):
        assert max_pairwise_distance([(0, 0), (1, 0), (0, 2)]) == pytest.approx(math.sqrt(5))
        assert max_pairwise_distance([(0, 0)]) == 0.0
