"""Tests for axis-aligned minimal bounding boxes."""

import math

import pytest

from repro.geometry import BoundingBox, Point, minbox_center


class TestBoundingBox:
    def test_of_points(self):
        box = BoundingBox.of([(0, 1), (2, -1), (1, 3)])
        assert box.x_min == 0 and box.x_max == 2
        assert box.y_min == -1 and box.y_max == 3

    def test_of_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.of([])

    def test_invalid_extent_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(1.0, 0.0, 0.0, 1.0)

    def test_center_width_height(self):
        box = BoundingBox.of([(0, 0), (4, 2)])
        assert box.center() == Point(2, 1)
        assert box.width() == 4.0
        assert box.height() == 2.0
        assert box.diagonal() == pytest.approx(math.sqrt(20))
        assert box.area() == pytest.approx(8.0)

    def test_single_point_box(self):
        box = BoundingBox.of([(1, 1)])
        assert box.center() == Point(1, 1)
        assert box.area() == 0.0

    def test_contains(self):
        box = BoundingBox.of([(0, 0), (2, 2)])
        assert box.contains((1, 1))
        assert box.contains((0, 2))
        assert not box.contains((3, 1))

    def test_contains_box_and_expanded(self):
        outer = BoundingBox.of([(0, 0), (4, 4)])
        inner = BoundingBox.of([(1, 1), (2, 2)])
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)
        assert inner.expanded(3.0).contains_box(outer)

    def test_minbox_center_helper(self):
        assert minbox_center([(0, 0), (2, 0), (1, 4)]) == Point(1, 2)
