"""Tests for angle arithmetic and angular sectors."""

import math

import pytest

from repro.geometry import (
    Point,
    angle_between,
    angle_difference,
    directions_from,
    extreme_directions,
    fits_in_open_halfplane,
    interior_angle,
    max_angular_gap,
    normalize_angle,
    normalize_angle_positive,
    sector_span,
    signed_turn_angle,
)


class TestNormalization:
    @pytest.mark.parametrize(
        "theta,expected",
        [(0.0, 0.0), (math.pi, math.pi), (-math.pi, math.pi), (3 * math.pi, math.pi),
         (2 * math.pi, 0.0), (-0.5, -0.5)],
    )
    def test_normalize_angle(self, theta, expected):
        assert normalize_angle(theta) == pytest.approx(expected)

    def test_normalize_angle_positive(self):
        assert normalize_angle_positive(-math.pi / 2) == pytest.approx(3 * math.pi / 2)
        assert normalize_angle_positive(2 * math.pi) == pytest.approx(0.0)

    def test_angle_difference_wraps(self):
        assert angle_difference(0.1, 2 * math.pi - 0.1) == pytest.approx(0.2)


class TestAngleBetween:
    def test_perpendicular_vectors(self):
        assert angle_between((1, 0), (0, 1)) == pytest.approx(math.pi / 2)

    def test_opposite_vectors(self):
        assert angle_between((1, 0), (-2, 0)) == pytest.approx(math.pi)

    def test_zero_vector_raises(self):
        with pytest.raises(ValueError):
            angle_between((0, 0), (1, 0))

    def test_interior_angle_of_right_triangle(self):
        assert interior_angle((1, 0), (0, 0), (0, 1)) == pytest.approx(math.pi / 2)


class TestSignedTurn:
    def test_straight_walk_has_zero_turn(self):
        assert signed_turn_angle((0, 0), (1, 0), (2, 0)) == pytest.approx(0.0)

    def test_left_turn_is_positive(self):
        assert signed_turn_angle((0, 0), (1, 0), (1, 1)) == pytest.approx(math.pi / 2)

    def test_right_turn_is_negative(self):
        assert signed_turn_angle((0, 0), (1, 0), (1, -1)) == pytest.approx(-math.pi / 2)


class TestAngularGap:
    def test_gap_of_single_direction_is_full_circle(self):
        gap, i, j = max_angular_gap([0.3])
        assert gap == pytest.approx(2 * math.pi)
        assert i == j == 0

    def test_gap_of_two_opposite_directions(self):
        gap, _, _ = max_angular_gap([0.0, math.pi])
        assert gap == pytest.approx(math.pi)

    def test_gap_identifies_bounding_directions(self):
        angles = [0.0, math.pi / 2, math.pi]
        gap, i, j = max_angular_gap(angles)
        assert gap == pytest.approx(math.pi)
        # The gap runs counter-clockwise from pi back around to 0.
        assert angles[i] == pytest.approx(math.pi)
        assert angles[j] == pytest.approx(0.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            max_angular_gap([])


class TestHalfplaneAndExtremes:
    def test_directions_in_quarter_plane_fit(self):
        assert fits_in_open_halfplane([(1, 0), (1, 1), (0, 1)])

    def test_opposite_directions_do_not_fit(self):
        assert not fits_in_open_halfplane([(1, 0), (-1, 0)])

    def test_spread_directions_do_not_fit(self):
        assert not fits_in_open_halfplane([(1, 0), (-1, 1), (-1, -1)])

    def test_empty_directions_do_not_fit(self):
        assert not fits_in_open_halfplane([])

    def test_extreme_directions_of_quarter_plane(self):
        directions = [Point(1, 0), Point(1, 1).unit(), Point(0, 1)]
        i, j = extreme_directions(directions)
        assert {i, j} == {0, 2}

    def test_sector_span(self):
        assert sector_span([(1, 0), (0, 1)]) == pytest.approx(math.pi / 2)
        assert sector_span([(1, 0)]) == pytest.approx(0.0)

    def test_directions_from_skips_coincident(self):
        dirs = directions_from((0, 0), [(0, 0), (2, 0), (0, 3)])
        assert len(dirs) == 2
        assert all(abs(d.norm() - 1.0) < 1e-12 for d in dirs)
