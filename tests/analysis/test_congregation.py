"""Tests for the congregation-lemma (6-8) numeric checks."""

import math

import pytest

from repro.analysis import (
    check_lemma6_on_configuration,
    check_lemma8_on_configuration,
    lemma6_distance_bound,
    lemma7_distance_bound,
    lemma8_perimeter_decrease,
)
from repro.workloads import random_connected_configuration, ring_configuration


class TestBounds:
    def test_lemma6_bound_formula(self):
        bound = lemma6_distance_bound(1.0, 1.0, 1.0)
        assert bound == pytest.approx((1.0 / (80 * math.sqrt(2.0))) ** 4)

    def test_lemma6_bound_monotone_in_zeta(self):
        assert lemma6_distance_bound(0.5, 1.0, 1.0) < lemma6_distance_bound(1.0, 1.0, 1.0)

    def test_lemma6_bound_smaller_for_less_rigid_motion(self):
        assert lemma6_distance_bound(1.0, 0.1, 1.0) < lemma6_distance_bound(1.0, 1.0, 1.0)

    def test_lemma6_validation(self):
        with pytest.raises(ValueError):
            lemma6_distance_bound(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            lemma6_distance_bound(1.0, 0.0, 1.0)

    def test_lemma7_bound_is_smaller_than_lemma6(self):
        assert lemma7_distance_bound(1.0, 1.0, 1.0) < lemma6_distance_bound(1.0, 1.0, 1.0)

    def test_lemma8_bound_formula(self):
        assert lemma8_perimeter_decrease(0.1, 2.0) == pytest.approx(0.001 / 16.0)
        with pytest.raises(ValueError):
            lemma8_perimeter_decrease(0.1, 0.0)


class TestConfigurationChecks:
    def test_lemma6_holds_on_random_configurations(self):
        for seed in range(5):
            configuration = random_connected_configuration(8, seed=seed)
            checks = check_lemma6_on_configuration(
                list(configuration.positions), 1.0, k=1, xi=0.5
            )
            assert checks
            assert all(c.satisfied for c in checks)

    def test_lemma6_checks_carry_metadata(self):
        configuration = ring_configuration(6)
        checks = check_lemma6_on_configuration(list(configuration.positions), 1.0)
        assert all(c.v_lower_bound > 0 for c in checks)
        assert all(c.zeta > 0 for c in checks)
        assert all(c.bound >= 0 for c in checks)

    def test_lemma8_holds_on_random_configurations(self):
        for seed in range(5):
            configuration = random_connected_configuration(10, seed=seed)
            d = 0.05 * configuration.hull_radius()
            check = check_lemma8_on_configuration(list(configuration.positions), d)
            assert check is not None
            assert check.satisfied
            assert check.decrease >= check.bound - 1e-12

    def test_lemma8_degenerate_inputs(self):
        assert check_lemma8_on_configuration([(0, 0), (1, 0)], 0.01) is None
        configuration = random_connected_configuration(8, seed=1)
        too_large = 2.0 * configuration.hull_radius()
        assert check_lemma8_on_configuration(list(configuration.positions), too_large) is None
