"""Tests for the incremental sweep aggregator.

The headline property: the streaming aggregate over rows arriving in
*any* order renders the identical table to the batch aggregate over the
same rows in expansion order — including on a sweep that mixes planar
and 3D runs.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.streaming import StreamingAggregator
from repro.sweeps import RunSpec, run_sweep

#: A mixed 2D/3D run list: two planar groups and one 3D group.
MIXED_RUNS = [
    RunSpec(
        algorithm="kknps", scheduler=scheduler, workload="line", n_robots=5,
        seed=seed, epsilon=0.1, max_activations=100,
    )
    for scheduler in ("ssync", "k-async")
    for seed in range(3)
] + [
    RunSpec(
        algorithm="kknps3", scheduler="ssync3", workload="line3", n_robots=6,
        seed=seed, algorithm_params=(("k", 1),), scheduler_k=1,
        epsilon=0.1, max_activations=40,
    )
    for seed in range(3)
]


@pytest.fixture(scope="module")
def mixed_result():
    return run_sweep(MIXED_RUNS)


class TestStreamingEqualsBatch:
    def test_runner_attached_aggregator_matches_batch(self, mixed_result):
        """The aggregator the runner streamed into == a batch rebuild."""
        batch = StreamingAggregator()
        for row in mixed_result.rows:
            batch.add_row(row)
        assert (
            mixed_result.to_table().render()
            == batch.to_table(executed=mixed_result.executed).render()
        )

    def test_arrival_order_does_not_change_the_table(self, mixed_result):
        """Rows folded in shuffled arrival order render the identical table."""
        reference = StreamingAggregator()
        for index, row in enumerate(mixed_result.rows):
            reference.add_row(row, order=index)

        indices = list(range(len(mixed_result.rows)))
        for attempt in range(5):
            random.Random(attempt).shuffle(indices)
            shuffled = StreamingAggregator()
            for index in indices:
                shuffled.add_row(mixed_result.rows[index], order=index)
            assert (
                shuffled.to_table(executed=len(indices)).render()
                == reference.to_table(executed=len(indices)).render()
            )

    def test_mixed_sweep_groups_cover_both_dimensions(self, mixed_result):
        rendered = mixed_result.to_table().render()
        assert "kknps3" in rendered and "kknps " in rendered
        assert "ssync3" in rendered


class TestAccumulators:
    def test_counts_and_extrema(self):
        aggregator = StreamingAggregator()
        diameters = [0.5, 0.1, 0.9, 0.3]
        for index, diameter in enumerate(diameters):
            aggregator.add_row(
                {
                    "algorithm": "a", "scheduler": "s", "workload": "w",
                    "error_model": "exact", "converged": index % 2 == 0,
                    "cohesion": True, "activations": 10 * (index + 1),
                    "final_diameter": diameter,
                }
            )
        group = aggregator.groups[("a", "s", "w", "exact")]
        assert group.count == 4
        assert group.converged == 2
        assert group.cohesive == 4
        assert group.diameter_max == 0.9
        mean_activations, mean_diameter = group.exact_means()
        assert mean_activations == 25.0
        assert mean_diameter == pytest.approx(0.45)
        assert group.quantile(0.0) == 0.1
        assert group.quantile(1.0) == 0.9
        assert group.quantile(0.5) == pytest.approx(0.4)
        assert aggregator.group_quantiles((0.5,)) == {
            ("a", "s", "w", "exact"): (pytest.approx(0.4),)
        }
        assert aggregator.snapshot() == {
            "rows": 4, "groups": 1, "converged": 2, "cohesive": 4,
        }

    def test_missing_field_rejected(self):
        aggregator = StreamingAggregator()
        with pytest.raises(ValueError, match="missing aggregate field"):
            aggregator.add_row({"algorithm": "a"})

    def test_bad_quantile_rejected(self):
        aggregator = StreamingAggregator()
        aggregator.add_row(
            {
                "algorithm": "a", "scheduler": "s", "workload": "w",
                "error_model": "exact", "converged": True, "cohesion": True,
                "activations": 1, "final_diameter": 0.5,
            }
        )
        group = aggregator.groups[("a", "s", "w", "exact")]
        with pytest.raises(ValueError):
            group.quantile(1.5)
