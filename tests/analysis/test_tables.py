"""Tests for the text-table renderer."""

import pytest

from repro.analysis import TextTable, render_key_values


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable("title", ["name", "value"])
        table.add_row("alpha", 1.0)
        table.add_row("a-much-longer-name", 123.456)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "title"
        assert "name" in lines[1] and "value" in lines[1]
        # All data lines share the separator width.
        assert len(lines[3]) == len(lines[4])

    def test_row_length_checked(self):
        table = TextTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_bool_and_float_formatting(self):
        table = TextTable("t", ["flag", "x"], float_format=".2f")
        table.add_row(True, 1.23456)
        text = table.render()
        assert "yes" in text
        assert "1.23" in text and "1.2346" not in text

    def test_add_rows_and_str(self):
        table = TextTable("t", ["a"])
        table.add_rows([[1], [2], [3]])
        assert len(table.rows) == 3
        assert str(table) == table.render()

    def test_render_key_values(self):
        text = render_key_values("summary", [("alpha", 1), ("beta", True)])
        assert "summary" in text
        assert "alpha" in text and "beta" in text
