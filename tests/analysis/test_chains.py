"""Tests for the doomed-engagement chain analysis (Lemma 5 / Theorem 4)."""

import math

import pytest

from repro.analysis import (
    LEMMA5_COS_BOUND,
    adversarial_engagement_search,
    chain_invariant_margins,
)
from repro.analysis.chains import EngagementTrace
from repro.geometry import Point


class TestConstants:
    def test_lemma5_bound_value(self):
        assert LEMMA5_COS_BOUND == pytest.approx(math.sqrt((2 + math.sqrt(3)) / 4))
        assert LEMMA5_COS_BOUND == pytest.approx(0.96592582, abs=1e-6)


class TestEngagementSearch:
    @pytest.mark.parametrize("k", [1, 2])
    def test_separation_never_exceeds_v(self, k):
        trace = adversarial_engagement_search(k=k, steps=20, trials=60, seed=k)
        assert trace.max_separation_ratio() <= 1.0 + 1e-9

    def test_search_is_adversarially_tight(self):
        # The greedy adversary pushes the pair essentially to the V boundary,
        # so the "never exceeds V" result is not vacuous.
        trace = adversarial_engagement_search(k=1, steps=30, trials=80, seed=0)
        assert trace.max_separation_ratio() > 0.95

    def test_scaled_visibility_range(self):
        trace = adversarial_engagement_search(
            visibility_range=2.0, k=1, steps=15, trials=30, seed=3
        )
        assert trace.max_separation() <= 2.0 + 1e-9
        assert trace.max_separation() > 1.5

    def test_trace_checkpoints_are_recorded(self):
        trace = adversarial_engagement_search(k=2, steps=10, trials=5, seed=1)
        assert len(trace.x_positions) == len(trace.y_positions)
        assert len(trace.separations()) == len(trace.x_positions)

    def test_starting_below_range_stays_below(self):
        trace = adversarial_engagement_search(
            k=1, steps=20, trials=40, seed=2, initial_separation_fraction=0.8
        )
        assert trace.max_separation_ratio() <= 1.0 + 1e-9


class TestChainMargins:
    def test_margins_on_search_trace(self):
        trace = adversarial_engagement_search(k=1, steps=20, trials=30, seed=5)
        margins = chain_invariant_margins(trace)
        assert margins
        assert all(m.satisfied for m in margins)

    def test_margins_of_trivial_trace(self):
        trace = EngagementTrace(visibility_range=1.0, k=1)
        trace.x_positions.append(Point(0, 0))
        trace.y_positions.append(Point(1, 0))
        assert chain_invariant_margins(trace) == []
