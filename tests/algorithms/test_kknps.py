"""Tests for the paper's algorithm (KKNPS)."""

import math

import numpy as np
import pytest

from repro.algorithms import KKNPSAlgorithm
from repro.geometry import Point
from repro.model import Snapshot


def snap(*neighbours):
    return Snapshot(neighbours=tuple(Point.of(p) for p in neighbours))


class TestParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            KKNPSAlgorithm(k=0)
        with pytest.raises(ValueError):
            KKNPSAlgorithm(distance_error_tolerance=1.0)
        with pytest.raises(ValueError):
            KKNPSAlgorithm(skew_tolerance=0.6)
        with pytest.raises(ValueError):
            KKNPSAlgorithm(close_fraction=1.0)
        with pytest.raises(ValueError):
            KKNPSAlgorithm(radius_divisor=2.0)

    def test_alpha_and_name(self):
        algorithm = KKNPSAlgorithm(k=4)
        assert algorithm.alpha == pytest.approx(0.25)
        assert algorithm.name == "kknps(k=4)"
        assert not algorithm.requires_visibility_range

    def test_describe_mentions_tolerances(self):
        text = KKNPSAlgorithm(k=2, distance_error_tolerance=0.05, skew_tolerance=0.1).describe()
        assert "delta" in text and "lambda" in text


class TestDestinationRule:
    def test_no_neighbours_means_nil_move(self):
        assert KKNPSAlgorithm().compute(snap()) == Point(0, 0)

    def test_single_neighbour_moves_to_safe_region_center(self):
        destination = KKNPSAlgorithm(k=1).compute(snap((0.8, 0.0)))
        # V_Y = 0.8, radius = 0.1, centre at 0.1 toward the neighbour.
        assert destination.is_close(Point(0.1, 0.0))

    def test_move_length_never_exceeds_v_over_8(self):
        rng = np.random.default_rng(0)
        algorithm = KKNPSAlgorithm(k=1)
        for _ in range(200):
            neighbours = [
                Point.polar(float(rng.uniform(0.05, 1.0)), float(rng.uniform(0, 2 * math.pi)))
                for _ in range(rng.integers(1, 6))
            ]
            snapshot = Snapshot(neighbours=tuple(neighbours))
            destination = algorithm.compute(snapshot)
            assert destination.norm() <= snapshot.farthest_distance() / 8.0 + 1e-12

    def test_scaling_by_k_divides_move(self):
        base = KKNPSAlgorithm(k=1).compute(snap((1.0, 0.0)))
        scaled = KKNPSAlgorithm(k=4).compute(snap((1.0, 0.0)))
        assert scaled.norm() == pytest.approx(base.norm() / 4.0)
        assert scaled.unit().is_close(base.unit())

    def test_two_distant_neighbours_use_lens_midpoint(self):
        destination = KKNPSAlgorithm(k=1).compute(snap((1.0, 0.0), (0.0, 1.0)))
        expected = (Point(0.125, 0.0) + Point(0.0, 0.125)) * 0.5
        assert destination.is_close(expected)

    def test_intermediate_distant_neighbours_do_not_change_target(self):
        with_extra = KKNPSAlgorithm(k=1).compute(
            snap((1.0, 0.0), (0.0, 1.0), Point.polar(0.9, math.pi / 4))
        )
        without_extra = KKNPSAlgorithm(k=1).compute(snap((1.0, 0.0), (0.0, 1.0)))
        assert with_extra.is_close(without_extra)

    def test_close_neighbours_are_ignored_for_the_target(self):
        with_close = KKNPSAlgorithm(k=1).compute(snap((1.0, 0.0), (0.1, -0.3)))
        without_close = KKNPSAlgorithm(k=1).compute(snap((1.0, 0.0)))
        assert with_close.is_close(without_close)

    def test_surrounded_robot_stays_put(self):
        # Three distant neighbours at 120-degree spacing: no open half-plane.
        neighbours = [Point.polar(1.0, angle) for angle in (0.0, 2.0943951, 4.1887902)]
        assert KKNPSAlgorithm(k=1).compute(Snapshot(neighbours=tuple(neighbours))) == Point(0, 0)

    def test_antipodal_neighbours_freeze_the_robot(self):
        assert KKNPSAlgorithm(k=1).compute(snap((1.0, 0.0), (-0.9, 0.0))) == Point(0, 0)

    def test_hub_of_the_impossibility_construction_moves_along_bisector(self):
        # X_A sees X_B at angle 0 and X_C at angle -135 degrees, both at distance 1.
        destination = KKNPSAlgorithm(k=1).compute(
            snap((1.0, 0.0), Point.polar(1.0, -3 * math.pi / 4))
        )
        assert destination.norm() > 0.0
        assert math.degrees(destination.angle()) == pytest.approx(-67.5, abs=1e-6)

    def test_destination_respects_all_safe_regions(self):
        rng = np.random.default_rng(1)
        algorithm = KKNPSAlgorithm(k=2)
        for _ in range(100):
            neighbours = [
                Point.polar(float(rng.uniform(0.2, 1.0)), float(rng.uniform(0, 2 * math.pi)))
                for _ in range(rng.integers(1, 7))
            ]
            snapshot = Snapshot(neighbours=tuple(neighbours))
            assert algorithm.destination_respects_safe_regions(snapshot)

    def test_rotation_equivariance(self):
        algorithm = KKNPSAlgorithm(k=1)
        neighbours = [Point(1.0, 0.0), Point(0.0, 0.9)]
        rotated = [p.rotated(0.7) for p in neighbours]
        base = algorithm.compute(Snapshot(neighbours=tuple(neighbours)))
        turned = algorithm.compute(Snapshot(neighbours=tuple(rotated)))
        assert turned.is_close(base.rotated(0.7), eps=1e-9)


class TestErrorTolerance:
    def test_distance_error_shrinks_the_range_estimate(self):
        tolerant = KKNPSAlgorithm(k=1, distance_error_tolerance=0.1)
        plain = KKNPSAlgorithm(k=1)
        snapshot = snap((1.0, 0.0))
        assert tolerant.perceived_range_bound(snapshot) == pytest.approx(1.0 / 1.1)
        assert tolerant.compute(snapshot).norm() < plain.compute(snapshot).norm()

    def test_skew_tolerance_shrinks_the_safe_region(self):
        tolerant = KKNPSAlgorithm(k=1, skew_tolerance=0.1)
        assert tolerant.effective_radius(1.0) == pytest.approx((1.0 / 8.0) * 0.8)
        destination = tolerant.compute(snap((1.0, 0.0)))
        assert destination.norm() == pytest.approx(0.1)

    def test_max_move_length_helper(self):
        algorithm = KKNPSAlgorithm(k=2)
        snapshot = snap((0.8, 0.0))
        assert algorithm.max_move_length(snapshot) == pytest.approx(0.05)
