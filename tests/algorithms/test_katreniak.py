"""Tests for the Katreniak-style algorithm."""

import math

import numpy as np
import pytest

from repro.algorithms import KatreniakAlgorithm
from repro.geometry import Point
from repro.model import Snapshot


def snap(*neighbours):
    return Snapshot(neighbours=tuple(Point.of(p) for p in neighbours))


class TestKatreniak:
    def test_does_not_need_visibility_range(self):
        assert not KatreniakAlgorithm().requires_visibility_range

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            KatreniakAlgorithm(ray_samples=2)

    def test_no_neighbours_stays(self):
        assert KatreniakAlgorithm().compute(snap()) == Point(0, 0)

    def test_single_neighbour_moves_toward_it(self):
        destination = KatreniakAlgorithm().compute(snap((0.8, 0.0)))
        assert destination.x > 0.0
        assert abs(destination.y) < 1e-9
        # The farthest-neighbour slack disk has radius 0, so the move stays
        # inside the quarter-way disk of radius |p|/4.
        assert destination.x <= 0.4 + 1e-9

    def test_destination_respects_composite_regions(self):
        rng = np.random.default_rng(2)
        algorithm = KatreniakAlgorithm(ray_samples=256)
        for _ in range(60):
            neighbours = [
                Point.polar(float(rng.uniform(0.1, 1.0)), float(rng.uniform(0, 2 * math.pi)))
                for _ in range(rng.integers(1, 5))
            ]
            snapshot = Snapshot(neighbours=tuple(neighbours))
            assert algorithm.destination_respects_safe_regions(snapshot, eps=1e-6)

    def test_move_keeps_every_neighbour_within_its_own_bound(self):
        rng = np.random.default_rng(3)
        algorithm = KatreniakAlgorithm()
        for _ in range(60):
            neighbours = [
                Point.polar(float(rng.uniform(0.3, 1.0)), float(rng.uniform(0, 2 * math.pi)))
                for _ in range(rng.integers(1, 4))
            ]
            snapshot = Snapshot(neighbours=tuple(neighbours))
            v_z = snapshot.farthest_distance()
            destination = algorithm.compute(snapshot)
            # Staying within the union regions keeps each neighbour within V_Z
            # of the new position when the neighbour does not move.
            assert all(destination.distance_to(p) <= v_z + 1e-6 for p in neighbours)

    def test_symmetric_neighbours_cancel(self):
        destination = KatreniakAlgorithm().compute(snap((0.8, 0.0), (-0.8, 0.0)))
        assert destination.norm() < 1e-6

    def test_rotation_equivariance(self):
        algorithm = KatreniakAlgorithm(ray_samples=512)
        neighbours = [Point(0.9, 0.0), Point(0.0, 0.6)]
        base = algorithm.compute(Snapshot(neighbours=tuple(neighbours)))
        rotated = algorithm.compute(
            Snapshot(neighbours=tuple(p.rotated(0.9) for p in neighbours))
        )
        assert rotated.is_close(base.rotated(0.9), eps=1e-2)
