"""Tests for the safe-region constructions of all three algorithms."""

import math

import pytest

from repro.algorithms import (
    ando_safe_region,
    ando_safe_region_local,
    katreniak_safe_region,
    katreniak_safe_region_local,
    kknps_max_planned_move,
    kknps_safe_region,
    kknps_safe_region_local,
    max_step_within_disks,
    max_step_within_regions,
    point_respects_disks,
)
from repro.geometry import Disk, Point


class TestKKNPSSafeRegion:
    def test_geometry_matches_paper(self):
        # Radius V_Y / 8, centred at distance V_Y / 8 toward the neighbour.
        region = kknps_safe_region((0, 0), (1, 0), 0.8)
        assert region.radius == pytest.approx(0.1)
        assert region.center == Point(0.1, 0.0)

    def test_scaling_by_one_over_k(self):
        base = kknps_safe_region((0, 0), (1, 0), 0.8)
        scaled = kknps_safe_region((0, 0), (1, 0), 0.8, alpha=0.25)
        assert scaled.radius == pytest.approx(base.radius / 4)
        assert scaled.center.norm() == pytest.approx(base.center.norm() / 4)

    def test_depends_only_on_direction(self):
        near = kknps_safe_region((0, 0), (0.5, 0.5), 1.0)
        far = kknps_safe_region((0, 0), (5, 5), 1.0)
        assert near.center.is_close(far.center)
        assert near.radius == far.radius

    def test_observer_on_boundary(self):
        region = kknps_safe_region_local((1, 0), 1.0)
        assert region.on_boundary((0, 0))

    def test_custom_radius_divisor(self):
        region = kknps_safe_region((0, 0), (1, 0), 1.0, radius_divisor=4.0)
        assert region.radius == pytest.approx(0.25)

    def test_max_planned_move(self):
        assert kknps_max_planned_move(0.8) == pytest.approx(0.1)
        assert kknps_max_planned_move(0.8, alpha=0.5) == pytest.approx(0.05)


class TestAndoSafeRegion:
    def test_midpoint_disk(self):
        region = ando_safe_region((0, 0), (1, 0), 1.0)
        assert region.center == Point(0.5, 0.0)
        assert region.radius == pytest.approx(0.5)

    def test_both_endpoints_inside_when_within_range(self):
        region = ando_safe_region((0, 0), (0.8, 0), 1.0)
        assert region.contains((0, 0))
        assert region.contains((0.8, 0))

    def test_staying_inside_preserves_visibility(self):
        # Any two points of the shared disk are within V of each other.
        region = ando_safe_region_local((1.0, 0.0), 1.0)
        a = region.boundary_point(0.3)
        b = region.boundary_point(0.3 + math.pi)
        assert a.distance_to(b) <= 1.0 + 1e-12


class TestKatreniakSafeRegion:
    def test_two_disk_shape(self):
        region = katreniak_safe_region((0, 0), (0.8, 0), 1.0)
        assert region.near_disk.center == Point(0.2, 0.0)
        assert region.near_disk.radius == pytest.approx(0.2)
        assert region.slack_disk.center == Point(0.0, 0.0)
        assert region.slack_disk.radius == pytest.approx(0.05)

    def test_union_membership(self):
        region = katreniak_safe_region_local((0.8, 0), 1.0)
        assert region.contains((0.2, 0.0))        # in the near disk
        assert region.contains((0.0, 0.04))       # in the slack disk
        assert not region.contains((0.8, 0.0))    # the neighbour itself is outside
        assert not region.contains((-0.2, 0.0))

    def test_slack_disk_vanishes_for_farthest_neighbour(self):
        region = katreniak_safe_region((0, 0), (1.0, 0), 1.0)
        assert region.slack_disk.radius == 0.0

    def test_disks_accessor(self):
        region = katreniak_safe_region_local((0.8, 0), 1.0)
        assert len(region.disks()) == 2


class TestMaxStepHelpers:
    def test_max_step_within_disks_reaches_goal_when_inside(self):
        disks = [Disk(Point(0.5, 0), 0.5)]
        end = max_step_within_disks((0, 0), (0.8, 0), disks)
        assert end.is_close(Point(0.8, 0.0))

    def test_max_step_clips_at_boundary(self):
        disks = [Disk(Point(0.5, 0), 0.5)]
        end = max_step_within_disks((0, 0), (2.0, 0), disks)
        assert end.is_close(Point(1.0, 0.0), eps=1e-9)

    def test_max_step_with_origin_outside_does_not_move(self):
        disks = [Disk(Point(5, 0), 0.5)]
        assert max_step_within_disks((0, 0), (1, 0), disks) == Point(0, 0)

    def test_max_step_multiple_disks_takes_tightest(self):
        disks = [Disk(Point(0.5, 0), 0.5), Disk(Point(0.25, 0), 0.3)]
        end = max_step_within_disks((0, 0), (2.0, 0), disks)
        assert end.x == pytest.approx(0.55, abs=1e-9)

    def test_point_respects_disks(self):
        disks = [Disk(Point(0, 0), 1.0), Disk(Point(1, 0), 1.0)]
        assert point_respects_disks((0.5, 0), disks)
        assert not point_respects_disks((-0.5, 0), disks)

    def test_max_step_within_regions_prefix_semantics(self):
        regions = [katreniak_safe_region_local((0.8, 0.0), 1.0)]
        end = max_step_within_regions((0, 0), (0.4, 0.0), regions, samples=256)
        # The move stops at the largest feasible prefix of the ray.
        assert 0.3 <= end.x <= 0.4 + 1e-9
        assert regions[0].contains(end, eps=1e-6)

    def test_max_step_within_regions_matches_reference_loop(self):
        """The vectorized pass pins bitwise to the 512-sample loop."""
        import random

        from repro.algorithms.safe_regions import _max_step_within_regions_loop

        rng = random.Random(7)
        for _ in range(120):
            origin = Point(rng.uniform(-1, 1), rng.uniform(-1, 1))
            goal = Point(
                origin.x + rng.uniform(-0.5, 0.5), origin.y + rng.uniform(-0.5, 0.5)
            )
            regions = [
                katreniak_safe_region(
                    origin,
                    Point(origin.x + rng.uniform(-1, 1), origin.y + rng.uniform(-1, 1)),
                    rng.uniform(0.5, 1.5),
                )
                for _ in range(rng.randint(1, 4))
            ]
            vectorized = max_step_within_regions(origin, goal, regions)
            reference = _max_step_within_regions_loop(origin, goal, regions, 512)
            assert (vectorized.x, vectorized.y) == (reference.x, reference.y)

    def test_max_step_within_regions_unknown_region_type_falls_back(self):
        class HalfPlane:
            def contains(self, point, *, eps=0.0):
                return Point.of(point).x <= 0.25

        end = max_step_within_regions((0, 0), (1.0, 0.0), [HalfPlane()], samples=100)
        assert end.x == pytest.approx(0.25, abs=0.011)


class TestBatchedMembership:
    """The batched membership paths agree with the scalar predicates."""

    def _regions(self):
        import numpy as np

        rng = np.random.default_rng(7)
        observer = Point(0.0, 0.0)
        regions = [
            katreniak_safe_region(observer, Point.polar(r, a), 1.0)
            for r, a in zip(rng.uniform(0.3, 0.99, size=4), rng.uniform(0.0, 6.28, size=4))
        ]
        return rng, regions

    def test_katreniak_contains_array_matches_contains(self):
        import numpy as np

        rng, regions = self._regions()
        px = rng.normal(scale=0.6, size=256)
        py = rng.normal(scale=0.6, size=256)
        for region in regions:
            verdicts = region.contains_array(px, py)
            for i in range(len(px)):
                assert verdicts[i] == region.contains(Point(float(px[i]), float(py[i])))

    def test_points_respect_disks_matches_scalar(self):
        import numpy as np

        from repro.algorithms.safe_regions import points_respect_disks

        rng = np.random.default_rng(11)
        disks = [
            Disk(Point(float(x), float(y)), float(r))
            for x, y, r in zip(
                rng.normal(size=5), rng.normal(size=5), rng.uniform(0.5, 2.0, size=5)
            )
        ]
        px = rng.normal(scale=1.5, size=200)
        py = rng.normal(scale=1.5, size=200)
        verdicts = points_respect_disks(px, py, disks)
        for i in range(len(px)):
            point = Point(float(px[i]), float(py[i]))
            assert verdicts[i] == point_respects_disks(point, disks)

    def test_max_step_within_regions_unchanged_by_batched_membership(self):
        import numpy as np

        rng, regions = self._regions()
        origin = Point(0.0, 0.0)
        for a in np.linspace(0.0, 6.2, 13):
            goal = Point.polar(0.4, float(a))
            landing = max_step_within_regions(origin, goal, regions)
            # The landing point must lie inside every region (the contract
            # the batched membership path inherits from the scalar loop),
            # unless no prefix of the segment was feasible at all.
            if landing != origin:
                assert all(r.contains(landing, eps=1e-7) for r in regions)
