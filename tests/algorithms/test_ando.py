"""Tests for Ando et al.'s Go-To-The-Centre-Of-The-SEC algorithm."""

import math

import numpy as np
import pytest

from repro.algorithms import AndoAlgorithm
from repro.geometry import Point
from repro.model import Snapshot


def snap(*neighbours, v=1.0):
    return Snapshot(neighbours=tuple(Point.of(p) for p in neighbours), visibility_range=v)


class TestRequirements:
    def test_requires_visibility_range(self):
        assert AndoAlgorithm().requires_visibility_range
        with pytest.raises(ValueError):
            AndoAlgorithm().compute(Snapshot(neighbours=(Point(0.5, 0),)))

    def test_max_move_validation(self):
        with pytest.raises(ValueError):
            AndoAlgorithm(max_move=0.0)


class TestDestination:
    def test_no_neighbours_stays(self):
        assert AndoAlgorithm().compute(snap()) == Point(0, 0)

    def test_two_robots_meet_in_the_middle(self):
        destination = AndoAlgorithm().compute(snap((0.8, 0.0)))
        # SEC of {origin, neighbour} is centred at the midpoint, which is
        # inside the safe disk, so the robot goes all the way there.
        assert destination.is_close(Point(0.4, 0.0))

    def test_symmetric_neighbours_cancel(self):
        destination = AndoAlgorithm().compute(snap((0.8, 0.0), (-0.8, 0.0)))
        assert destination.norm() < 1e-9

    def test_destination_respects_safe_disks(self):
        rng = np.random.default_rng(0)
        algorithm = AndoAlgorithm()
        for _ in range(100):
            neighbours = [
                Point.polar(float(rng.uniform(0.1, 1.0)), float(rng.uniform(0, 2 * math.pi)))
                for _ in range(rng.integers(1, 6))
            ]
            snapshot = Snapshot(neighbours=tuple(neighbours), visibility_range=1.0)
            assert algorithm.destination_respects_safe_regions(snapshot)

    def test_move_stays_within_visibility_of_every_neighbour(self):
        rng = np.random.default_rng(1)
        algorithm = AndoAlgorithm()
        for _ in range(100):
            neighbours = [
                Point.polar(float(rng.uniform(0.1, 1.0)), float(rng.uniform(0, 2 * math.pi)))
                for _ in range(rng.integers(1, 5))
            ]
            snapshot = Snapshot(neighbours=tuple(neighbours), visibility_range=1.0)
            destination = algorithm.compute(snapshot)
            # A static neighbour stays visible after the move (SSync safety).
            assert all(destination.distance_to(p) <= 1.0 + 1e-9 for p in neighbours)

    def test_max_move_caps_the_goal(self):
        capped = AndoAlgorithm(max_move=0.1).compute(snap((0.8, 0.0)))
        assert capped.norm() <= 0.1 + 1e-12

    def test_clipping_against_far_neighbour(self):
        # One neighbour straight ahead at the range boundary and one behind:
        # the SEC centre is ahead but the far neighbour's safe disk clips the move.
        destination = AndoAlgorithm().compute(snap((1.0, 0.0), (-1.0, 0.0)))
        assert destination.norm() < 1e-9

    def test_rotation_equivariance(self):
        algorithm = AndoAlgorithm()
        neighbours = [Point(0.9, 0.0), Point(0.0, 0.7)]
        base = algorithm.compute(Snapshot(neighbours=tuple(neighbours), visibility_range=1.0))
        rotated = algorithm.compute(
            Snapshot(neighbours=tuple(p.rotated(1.1) for p in neighbours), visibility_range=1.0)
        )
        assert rotated.is_close(base.rotated(1.1), eps=1e-9)
