"""Tests for the unlimited-visibility baselines (CoG, GCM) and the base interface."""

import pytest

from repro.algorithms import (
    CenterOfGravityAlgorithm,
    ConvergenceAlgorithm,
    MinboxAlgorithm,
    StationaryAlgorithm,
)
from repro.geometry import Point
from repro.model import Snapshot


def snap(*neighbours):
    return Snapshot(neighbours=tuple(Point.of(p) for p in neighbours))


class TestCenterOfGravity:
    def test_moves_to_centroid_including_self(self):
        destination = CenterOfGravityAlgorithm().compute(snap((3.0, 0.0), (0.0, 3.0)))
        assert destination == Point(1.0, 1.0)

    def test_step_fraction(self):
        destination = CenterOfGravityAlgorithm(step_fraction=0.5).compute(snap((2.0, 0.0)))
        assert destination == Point(0.5, 0.0)

    def test_step_fraction_validation(self):
        with pytest.raises(ValueError):
            CenterOfGravityAlgorithm(step_fraction=0.0)

    def test_no_neighbours_stays(self):
        assert CenterOfGravityAlgorithm().compute(snap()) == Point(0, 0)

    def test_assumes_unlimited_visibility(self):
        assert CenterOfGravityAlgorithm().assumes_unlimited_visibility


class TestMinbox:
    def test_moves_to_minbox_center(self):
        destination = MinboxAlgorithm().compute(snap((4.0, 0.0), (0.0, 2.0)))
        assert destination == Point(2.0, 1.0)

    def test_minbox_differs_from_centroid(self):
        cog = CenterOfGravityAlgorithm().compute(snap((4.0, 0.0), (1.0, 0.0)))
        gcm = MinboxAlgorithm().compute(snap((4.0, 0.0), (1.0, 0.0)))
        assert cog != gcm
        assert gcm == Point(2.0, 0.0)

    def test_step_fraction_validation(self):
        with pytest.raises(ValueError):
            MinboxAlgorithm(step_fraction=2.0)

    def test_no_neighbours_stays(self):
        assert MinboxAlgorithm().compute(snap()) == Point(0, 0)


class TestBaseInterface:
    def test_stationary_never_moves(self):
        assert StationaryAlgorithm().compute(snap((1.0, 1.0))) == Point(0, 0)

    def test_known_range_error_message(self):
        class NeedsRange(ConvergenceAlgorithm):
            name = "needs-range"
            requires_visibility_range = True

            def compute(self, snapshot):
                return Point(self._known_range(snapshot), 0.0)

        with pytest.raises(ValueError, match="needs-range"):
            NeedsRange().compute(snap((0.5, 0)))
        assert NeedsRange().compute(
            Snapshot(neighbours=(Point(0.5, 0),), visibility_range=2.0)
        ) == Point(2.0, 0.0)

    def test_describe_defaults_to_name(self):
        assert StationaryAlgorithm().describe() == "stationary"
