"""Tests for the Section-7 spiral configuration generator."""

import math

import pytest

from repro.adversary import build_spiral


class TestSpiralGeometry:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            build_spiral(0.0)
        with pytest.raises(ValueError):
            build_spiral(1.0)
        with pytest.raises(ValueError):
            build_spiral(0.3, visibility_range=0.0)

    def test_anchor_robots(self):
        spiral = build_spiral(0.3)
        assert spiral.hub.norm() == 0.0
        assert spiral.c_robot.norm() == pytest.approx(1.0)
        assert math.degrees(spiral.c_robot.angle()) == pytest.approx(-135.0)
        assert spiral.tail[0].is_close((1.0, 0.0))

    def test_consecutive_tail_robots_at_unit_distance(self):
        spiral = build_spiral(0.3)
        for a, b in zip(spiral.tail, spiral.tail[1:]):
            assert a.distance_to(b) == pytest.approx(1.0)

    def test_turn_angle_between_chord_and_segment_is_psi(self):
        psi = 0.3
        spiral = build_spiral(psi)
        for previous, current in zip(spiral.tail, spiral.tail[1:]):
            chord_angle = spiral.hub.angle_to(previous)
            segment_angle = previous.angle_to(current)
            assert segment_angle - chord_angle == pytest.approx(psi, abs=1e-9)

    def test_total_rotation_reaches_target(self):
        spiral = build_spiral(0.3)
        assert spiral.total_rotation() >= spiral.target_rotation - 1e-9
        # And does not wildly overshoot (one extra step at most).
        assert spiral.total_rotation() <= spiral.target_rotation + 0.2

    def test_chord_lengths_grow_roughly_linearly(self):
        spiral = build_spiral(0.25)
        lengths = spiral.chord_lengths()
        psi = spiral.psi
        for i, d in enumerate(lengths):
            # Paper: i (1 - psi^2/2) < d_i < i (with d_0 = 1, 1-indexed here).
            assert (i + 1) * (1 - psi * psi / 2) < d + 1e-9
            assert d <= (i + 1) + 1e-9

    def test_robot_count_close_to_paper_bound(self):
        spiral = build_spiral(0.3)
        # The generator should need the same order of robots as the paper's
        # bound 3 + exp(3*pi / (8 sin psi)).
        assert spiral.n_robots <= 3 * spiral.predicted_robot_count()
        assert spiral.n_robots >= 0.3 * spiral.predicted_robot_count()

    def test_initial_configuration_is_connected(self):
        spiral = build_spiral(0.35)
        assert spiral.configuration().is_connected()

    def test_hub_sees_only_b_and_c(self):
        spiral = build_spiral(0.3)
        visible = [
            p for p in spiral.positions()[1:]
            if spiral.hub.distance_to(p) <= spiral.visibility_range + 1e-9
        ]
        assert len(visible) == 2

    def test_spiral_turns_away_from_c(self):
        spiral = build_spiral(0.3)
        final_direction = spiral.final_chord_direction()
        # The final chord points into the upper half plane (counter-clockwise
        # from the x axis), on the opposite side from X_C.
        assert final_direction.y > 0.0
        assert spiral.bisector_direction().y < 0.0

    def test_gamma_decreases_along_the_tail(self):
        spiral = build_spiral(0.3)
        gammas = spiral.consecutive_gamma()
        assert gammas[0] > gammas[-1]
        # gamma_i = asin(sin(psi) / d_i), where d_i is the new chord length.
        lengths = spiral.chord_lengths()
        for gamma, d in zip(gammas, lengths[1:]):
            assert gamma == pytest.approx(math.asin(math.sin(spiral.psi) / d), rel=1e-6)
