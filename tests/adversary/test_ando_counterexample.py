"""Tests for the Figure-4 counterexample construction."""

import pytest

from repro.adversary import (
    canonical_instance,
    one_async_schedule,
    replay,
    run_figure4,
    search_failure_instances,
    two_nesta_schedule,
)
from repro.algorithms import KKNPSAlgorithm
from repro.schedulers import validate_k_async, validate_k_nesta


class TestInstance:
    def test_canonical_instance_is_admissible(self):
        instance = canonical_instance()
        assert instance.is_admissible()
        assert instance.configuration().is_connected()
        assert instance.x0.distance_to(instance.y0) == pytest.approx(1.0)

    def test_instance_scales_with_visibility_range(self):
        instance = canonical_instance(visibility_range=2.0)
        assert instance.is_admissible()
        assert instance.x0.distance_to(instance.y0) == pytest.approx(2.0)


class TestSchedules:
    def test_one_async_schedule_is_one_async(self):
        schedule = one_async_schedule()
        assert validate_k_async(schedule, 1)

    def test_two_nesta_schedule_is_two_nesta_but_not_one(self):
        schedule = two_nesta_schedule()
        assert validate_k_nesta(schedule, 2)
        assert not validate_k_nesta(schedule, 1)

    def test_x_is_activated_twice_and_y_once(self):
        for schedule in (one_async_schedule(), two_nesta_schedule()):
            ids = [a.robot_id for a in schedule]
            assert ids.count(0) == 2
            assert ids.count(1) == 1


class TestReplay:
    def test_ando_breaks_visibility_on_both_timelines(self):
        outcomes = run_figure4()
        for outcome in outcomes.values():
            assert outcome.visibility_broken
            assert outcome.final_separation > 1.0
            assert not outcome.cohesion_maintained
            assert outcome.separation_ratio > 1.0

    def test_kknps_preserves_visibility_on_the_same_timelines(self):
        instance = canonical_instance()
        for schedule, k in ((one_async_schedule(), 1), (two_nesta_schedule(), 2)):
            outcome = replay(instance, schedule, algorithm=KKNPSAlgorithm(k=k))
            assert not outcome.visibility_broken
            assert outcome.cohesion_maintained

    def test_stationary_robots_do_not_move(self):
        outcome = run_figure4()["1-async"]
        final = outcome.result.final_configuration
        instance = outcome.instance
        assert final[2].is_close(instance.a)
        assert final[3].is_close(instance.b)
        assert final[4].is_close(instance.c)

    def test_search_finds_additional_instances(self):
        best, breaking = search_failure_instances(n_candidates=80, seed=1)
        assert best is not None
        assert breaking >= 1
        assert best.final_separation > 1.0
