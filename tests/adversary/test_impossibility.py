"""Tests for the full Section-7 impossibility driver."""

import math

import pytest

from repro.adversary import required_zeta, representative_hub_moves, run_impossibility
from repro.adversary.impossibility import hub_snapshot
from repro.adversary.spiral import build_spiral


class TestHubMoves:
    def test_hub_snapshot_contains_two_neighbours(self):
        spiral = build_spiral(0.3)
        snapshot = hub_snapshot(spiral, reveal_range=False)
        assert snapshot.neighbour_count() == 2
        assert snapshot.visibility_range is None
        assert hub_snapshot(spiral, reveal_range=True).visibility_range == 1.0

    def test_representative_moves_are_forced_and_on_the_bisector(self):
        spiral = build_spiral(0.3)
        moves = representative_hub_moves(spiral)
        assert len(moves) == 2
        for move in moves:
            assert move.zeta > 0.0
            assert move.in_c_side_half_sector
            assert math.degrees(move.direction_angle) == pytest.approx(-67.5, abs=1e-3)

    def test_kknps_zeta_matches_hand_computation(self):
        spiral = build_spiral(0.3)
        moves = {m.algorithm_name: m for m in representative_hub_moves(spiral)}
        kknps = [m for name, m in moves.items() if name.startswith("kknps")][0]
        # zeta = |(1/8)(u_B + u_C)/2| with a 135-degree angle between u_B and u_C.
        expected = (1.0 / 8.0) * math.cos(3.0 * math.pi / 8.0)
        assert kknps.zeta == pytest.approx(expected, abs=1e-9)


class TestFullConstruction:
    @pytest.fixture(scope="class")
    def report(self):
        return run_impossibility(psi=0.3, delta=0.05, skew=0.1)

    def test_construction_is_legal(self, report):
        assert report.construction_is_legal
        assert report.flattening.lens_violations == 0

    def test_drift_and_distance_band(self, report):
        assert report.drift_within_paper_bound
        assert report.edges_indistinguishable_from_threshold

    def test_required_zeta_is_tiny(self, report):
        # With the distance-preserving collapse, any positive hub move works.
        assert report.required_zeta < 0.01

    def test_both_representatives_break_visibility(self, report):
        assert report.any_representative_breaks_visibility
        assert all(report.visibility_broken.values())
        for separation in report.separations.values():
            assert separation > 1.0

    def test_final_graph_splits_into_separable_components(self, report):
        assert report.final_components >= 2
        assert report.components_linearly_separable

    def test_witnesses_are_valid(self, report):
        assert len(report.witnesses) == 2
        assert all(w.is_valid() for w in report.witnesses)

    def test_summary_lines_render(self, report):
        lines = report.summary_lines()
        assert any("spiral" in line for line in lines)
        assert any("BROKEN" in line for line in lines)


class TestRequiredZeta:
    def test_required_zeta_zero_when_b_already_far(self):
        spiral = build_spiral(0.3)
        flattening = type("F", (), {})()  # lightweight stand-in

        class FakeFlattening:
            b_final = spiral.hub + spiral.bisector_direction() * (-1.5)

        assert required_zeta(spiral, FakeFlattening()) == 0.0
