"""Tests for the forced-motion witnesses (Section 7.2.1)."""

import math

import pytest

from repro.adversary import (
    distance_indistinguishable,
    forced_motion_witness,
    paper_modulus,
    smallest_witness_modulus,
)


class TestWitnesses:
    def test_paper_modulus_formula(self):
        assert paper_modulus(0.3, 0.1) == int(math.floor(4 * math.pi / 0.03)) + 1

    def test_paper_modulus_validation(self):
        with pytest.raises(ValueError):
            paper_modulus(0.0, 0.1)
        with pytest.raises(ValueError):
            paper_modulus(0.3, 1.0)

    @pytest.mark.parametrize("phi,lam", [(0.3, 0.1), (0.05, 0.2), (0.5, 0.05), (0.001, 0.3)])
    def test_witness_exists_with_paper_modulus(self, phi, lam):
        witness = forced_motion_witness(phi, lam)
        assert witness.is_valid()
        low, high = witness.perceived_interval
        assert low - 1e-12 <= witness.lower_special_angle <= witness.upper_special_angle <= high + 1e-12
        # The two special angles are consecutive multiples of 2*pi/M.
        assert witness.upper_special_angle - witness.lower_special_angle == pytest.approx(
            2 * math.pi / witness.modulus
        )

    def test_witness_with_too_small_modulus_raises(self):
        with pytest.raises(ValueError):
            forced_motion_witness(0.3, 0.1, modulus=10)

    def test_smallest_modulus_is_at_most_paper_bound(self):
        phi, lam = 0.3, 0.1
        smallest = smallest_witness_modulus(phi, lam)
        assert smallest <= paper_modulus(phi, lam)
        witness = forced_motion_witness(phi, lam, modulus=smallest)
        assert witness.is_valid()


class TestDistanceIndistinguishability:
    def test_threshold_distance_is_indistinguishable(self):
        assert distance_indistinguishable(1.0, 1.0, 0.05)

    def test_slightly_shorter_distance_is_indistinguishable(self):
        assert distance_indistinguishable(0.97, 1.0, 0.05)

    def test_much_shorter_distance_is_distinguishable(self):
        assert not distance_indistinguishable(0.9, 1.0, 0.05)

    def test_longer_than_threshold_never_qualifies(self):
        assert not distance_indistinguishable(1.01, 1.0, 0.05)
