"""Tests for the sliver-flattening adversary (Section 7.2.2-7.2.3)."""

import math

import pytest

from repro.adversary import build_spiral, collapse_point, flatten_spiral
from repro.geometry import Point
from repro.geometry.segment import collinear


class TestCollapsePoint:
    def test_result_is_collinear_with_neighbours(self):
        hub = Point(0, 0)
        inner = Point(1.0, 0.0)
        outer = Point(2.9, 0.5)
        current = Point(2.0, 0.3)
        new = collapse_point(hub, inner, current, outer)
        assert collinear(inner, new, outer, eps=1e-9)

    def test_hub_distance_preserved_when_possible(self):
        hub = Point(0, 0)
        inner = Point(1.0, 0.0)
        current = Point(1.98, 0.3)
        outer = Point(2.95, 0.4)
        new = collapse_point(hub, inner, current, outer)
        assert hub.distance_to(new) == pytest.approx(hub.distance_to(current), abs=1e-9)

    def test_fallback_projection_when_circle_misses_line(self):
        hub = Point(0, 0)
        inner = Point(5.0, 5.0)
        outer = Point(6.0, 5.0)
        current = Point(3.0, 0.1)  # much closer to the hub than the line y = 5
        new = collapse_point(hub, inner, current, outer)
        # Falls back to the orthogonal projection onto the line y = 5.
        assert new.y == pytest.approx(5.0)
        assert new.x == pytest.approx(3.0)

    def test_degenerate_neighbours(self):
        hub = Point(0, 0)
        inner = outer = Point(1.0, 1.0)
        new = collapse_point(hub, inner, Point(2.0, 1.0), outer)
        assert new.is_close(inner)


class TestFlattening:
    @pytest.fixture(scope="class")
    def flattening(self):
        spiral = build_spiral(0.35)
        return flatten_spiral(spiral)

    def test_every_move_is_lens_legal(self, flattening):
        assert flattening.lens_violations == 0
        assert flattening.total_moves > 0

    def test_per_move_drift_bound(self, flattening):
        assert flattening.drift_bound_violations == 0
        for move in flattening.sampled_moves:
            assert move.respects_paper_drift_bound()

    def test_total_drift_within_paper_bound(self, flattening):
        assert flattening.max_abs_drift <= flattening.paper_total_drift_bound()

    def test_edges_stay_near_threshold(self, flattening):
        psi = flattening.spiral.psi
        assert flattening.max_edge_length_seen <= 1.0 + 1e-9
        assert flattening.min_edge_length_seen > 1.0 - psi * psi
        assert flattening.edges_stay_indistinguishable(delta=psi * psi)

    def test_tail_ends_on_the_final_chord(self, flattening):
        spiral = flattening.spiral
        direction = spiral.final_chord_direction()
        for index, position in enumerate(flattening.final_tail[:-1]):
            offset = position - spiral.hub
            lateral = abs(offset.cross(direction))
            # Essential collinearity: the residual lateral offset is small
            # compared with the chord length (the tolerance leaves a slack of
            # roughly psi/4 in the accumulated direction).
            assert lateral <= 0.3 * spiral.psi * max(1.0, offset.norm())

    def test_b_rotates_by_the_target_angle(self, flattening):
        spiral = flattening.spiral
        b_final = flattening.b_final
        rotation = abs(b_final.angle() - spiral.tail[0].angle())
        assert rotation == pytest.approx(spiral.total_rotation(), abs=0.5 * spiral.psi)
        # And X_B keeps (essentially) its unit distance from the hub.
        assert spiral.hub.distance_to(b_final) == pytest.approx(1.0, abs=0.01)

    def test_individual_moves_are_small(self, flattening):
        # Each collapse moves a robot by at most ~phi/2 <= psi/2.
        assert flattening.max_single_move_length <= flattening.spiral.psi
