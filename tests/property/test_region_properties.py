"""Property-based tests for the reachable-region lemmas (Lemmas 1-2)."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, ReachableRegion, offset_disk


class TestReachableRegionProperties:
    @given(
        st.integers(min_value=1, max_value=6),
        st.floats(min_value=0.3, max_value=1.0),
        st.floats(min_value=0.0, max_value=2 * math.pi),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=120, deadline=None)
    def test_lemma1_containment(self, k, v_y, angle, seed):
        """j <= k scaled moves toward a stationary neighbour stay inside R."""
        rng = np.random.default_rng(seed)
        j = int(rng.integers(1, k + 1))
        neighbour = Point.polar(v_y * float(rng.uniform(0.55, 1.0)), angle)
        step = v_y / (8.0 * k)
        position = Point(0.0, 0.0)
        for _ in range(j):
            region = offset_disk(position, neighbour, step)
            direction = rng.uniform(0.0, 2.0 * math.pi)
            radius = region.radius * (1.0 if rng.random() < 0.5 else math.sqrt(rng.random()))
            position = region.center + Point.polar(radius, direction)
        target = ReachableRegion.of(Point(0, 0), neighbour, neighbour, j * v_y / (8.0 * k))
        assert target.contains(position, eps=1e-7)

    @given(
        st.integers(min_value=1, max_value=5),
        st.floats(min_value=0.3, max_value=1.0),
        st.floats(min_value=0.0, max_value=2 * math.pi),
        st.floats(min_value=0.0, max_value=2 * math.pi),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=120, deadline=None)
    def test_lemma2_containment_with_moving_neighbour(self, k, v_y, angle, move_angle, seed):
        """Moves against a moving neighbour stay inside the extended region R."""
        rng = np.random.default_rng(seed)
        j = int(rng.integers(1, k + 1))
        x_start = Point.polar(v_y * float(rng.uniform(0.55, 1.0)), angle)
        x_end = x_start + Point.polar(v_y / 8.0 * float(rng.random()), move_angle)
        step = v_y / (8.0 * k)
        fractions = np.sort(rng.random(j))
        position = Point(0.0, 0.0)
        for t in fractions:
            observed = x_start.lerp(x_end, float(t))
            region = offset_disk(position, observed, step)
            direction = rng.uniform(0.0, 2.0 * math.pi)
            radius = region.radius * (1.0 if rng.random() < 0.5 else math.sqrt(rng.random()))
            position = region.center + Point.polar(radius, direction)
        target = ReachableRegion.of(Point(0, 0), x_start, x_end, j * v_y / (8.0 * k))
        assert target.contains(position, eps=1e-7)

    @given(
        st.floats(min_value=0.3, max_value=1.0),
        st.floats(min_value=0.0, max_value=2 * math.pi),
        st.floats(min_value=0.01, max_value=0.2),
    )
    @settings(max_examples=100)
    def test_region_grows_monotonically_with_radius(self, v_y, angle, extra):
        neighbour = Point.polar(v_y, angle)
        small = ReachableRegion.of(Point(0, 0), neighbour, neighbour, v_y / 8.0)
        # Every point of the smaller region's core disk stays inside the
        # expanded region.
        boundary_point = small.core_disk(0.0).boundary_point(angle + 1.0)
        assert small.expanded(extra).contains(boundary_point, eps=1e-7)
