"""Property tests: the array snapshot path is equivalent to the object path.

``build_snapshot`` has two implementations — the batched numpy fast path
(default) and the retained per-Point reference path.  These tests pin
their equivalence, bit for bit, over random configurations crossed with
every feature that changes the pipeline: private frames (rotation,
reflection, scale), perception error models (including random draws,
where both paths must consume the RNG stream identically), coincident
robots, multiplicity detection, range revelation and the k-bound
pass-through.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Point
from repro.geometry.transforms import LocalFrame, SymmetricDistortion
from repro.model import PerceptionModel, build_snapshot


def _random_others(rng: np.random.Generator, m: int, *, duplicates: bool = False):
    others = rng.normal(scale=1.2, size=(m, 2))
    if duplicates and m >= 4:
        # Exact duplicates of earlier rows plus one robot on the observer.
        others[m // 2] = others[0]
        others[m // 2 + 1] = others[1]
        others[-1] = (0.0, 0.0)
    return others


def _assert_equivalent(observer, others, visibility_range, *, rng_seed=0, **kwargs):
    first = build_snapshot(
        observer,
        others,
        visibility_range,
        rng=np.random.default_rng(rng_seed),
        method="array",
        **kwargs,
    )
    second = build_snapshot(
        observer,
        [Point.of(p) for p in others],
        visibility_range,
        rng=np.random.default_rng(rng_seed),
        method="object",
        **kwargs,
    )
    assert first.neighbours == second.neighbours
    assert first.multiplicities == second.multiplicities
    assert first.visibility_range == second.visibility_range
    assert first.k_bound == second.k_bound
    assert first.time == second.time
    assert first.robot_id == second.robot_id
    return first


class TestSnapshotPathEquivalence:
    @pytest.mark.parametrize("seed", range(20))
    def test_plain_visibility_filtering(self, seed):
        rng = np.random.default_rng(seed)
        others = _random_others(rng, int(rng.integers(0, 30)))
        snap = _assert_equivalent((0.1, -0.2), others, 1.0)
        for p in snap.neighbours:
            assert p.norm() <= 1.0 + 1e-6

    @pytest.mark.parametrize("seed", range(10))
    def test_with_random_frames(self, seed):
        rng = np.random.default_rng(seed)
        others = _random_others(rng, 12)
        frame = LocalFrame(
            Point.origin(),
            rotation=float(rng.uniform(0, 2 * np.pi)),
            reflected=bool(rng.integers(0, 2)),
            scale=float(rng.uniform(0.5, 2.0)),
        )
        _assert_equivalent((0.0, 0.3), others, 1.5, frame=frame)

    @pytest.mark.parametrize(
        "perception",
        [
            PerceptionModel(distance_error=0.1, bias="over"),
            PerceptionModel(distance_error=0.1, bias="under"),
            PerceptionModel(distance_error=0.1, bias="random"),
            PerceptionModel(distortion=SymmetricDistortion(amplitude=0.2, frequency=4)),
            PerceptionModel(
                distance_error=0.05,
                bias="random",
                distortion=SymmetricDistortion(amplitude=0.1, frequency=2),
            ),
        ],
    )
    @pytest.mark.parametrize("seed", [0, 3])
    def test_with_perception_errors(self, perception, seed):
        rng = np.random.default_rng(seed)
        others = _random_others(rng, 15, duplicates=True)
        _assert_equivalent((0.0, 0.0), others, 2.0, perception=perception, rng_seed=seed)

    @pytest.mark.parametrize("seed", range(8))
    def test_with_coincident_robots(self, seed):
        rng = np.random.default_rng(seed)
        others = _random_others(rng, 14, duplicates=True)
        snap = _assert_equivalent(
            (0.0, 0.0), others, 3.0, multiplicity_detection=True, rng_seed=seed
        )
        assert snap.multiplicities is not None
        assert sum(snap.multiplicities) >= snap.neighbour_count()

    def test_near_coincident_cluster(self):
        # Points within, at and just above the coincidence epsilon.
        eps = 1e-12
        others = [
            (0.5, 0.5),
            (0.5 + 0.4 * eps, 0.5),
            (0.5, 0.5 + 0.9 * eps),
            (0.5 + 5 * eps, 0.5),
            (0.7, 0.5),
        ]
        snap = _assert_equivalent((0.0, 0.0), others, 2.0, multiplicity_detection=True)
        assert snap.neighbour_count() < len(others)

    def test_axis_aligned_grid_configuration(self):
        # Many robots sharing exact x coordinates (lexsort runs with ties).
        others = [(0.2 * i, 0.2 * j) for i in range(5) for j in range(5)]
        _assert_equivalent((0.45, 0.45), others, 0.5)

    def test_collinear_vertical_stack(self):
        others = [(0.3, 0.1 * j) for j in range(12)]
        _assert_equivalent((0.0, 0.0), others, 1.0)

    @pytest.mark.parametrize("k_bound", [None, 1, 3])
    @pytest.mark.parametrize("reveal_range", [False, True])
    def test_metadata_passthrough(self, k_bound, reveal_range):
        rng = np.random.default_rng(5)
        others = _random_others(rng, 9)
        snap = _assert_equivalent(
            (0.0, 0.0),
            others,
            1.0,
            k_bound=k_bound,
            reveal_range=reveal_range,
            time=4.25,
            robot_id=3,
        )
        assert snap.k_bound == k_bound
        assert (snap.visibility_range == 1.0) if reveal_range else (
            snap.visibility_range is None
        )

    def test_empty_and_single_inputs(self):
        _assert_equivalent((1.0, 1.0), [], 1.0)
        _assert_equivalent((1.0, 1.0), [(1.5, 1.0)], 1.0)
        _assert_equivalent((1.0, 1.0), [(1.0, 1.0)], 1.0)  # observer-coincident only

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            build_snapshot((0.0, 0.0), [(0.5, 0.0)], 1.0, method="turbo")
