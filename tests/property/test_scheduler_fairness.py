"""Fairness invariants of the built-in scheduler family.

Two properties every scheduler promises the kernel (see
``repro.schedulers.base``):

1. **Ordered issue** — batches arrive in non-decreasing ``look_time``
   order: no activation in a later batch starts earlier than one already
   issued.  The kernel's global heap consumption (and hence the
   correctness of every snapshot) leans on this.
2. **Fairness** — every non-crashed robot is activated infinitely often.
   The bounded-horizon proxy tested here: over a window of consecutive
   batches, every robot appears in every quarter of the window, so no
   robot's activations dry up as the schedule progresses.

Both properties are checked at the scheduler level and through full
kernel runs — planar and 3D, since the same scheduler objects drive the
continuous-time kernel in either dimension.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import KKNPSAlgorithm
from repro.engine import SimulationConfig, run_simulation
from repro.schedulers import (
    AsyncScheduler,
    FSyncScheduler,
    KAsyncScheduler,
    KNestAScheduler,
    SSyncScheduler,
)
from repro.spatial3d import (
    AsyncSimulation3Config,
    KKNPS3Algorithm,
    random_connected_configuration3,
    run_simulation3_async,
)
from repro.workloads import random_connected_configuration

SCHEDULERS = [
    ("fsync", lambda: FSyncScheduler()),
    ("ssync", lambda: SSyncScheduler()),
    ("1-nesta", lambda: KNestAScheduler(k=1)),
    ("3-nesta", lambda: KNestAScheduler(k=3)),
    ("1-async", lambda: KAsyncScheduler(k=1)),
    ("2-async", lambda: KAsyncScheduler(k=2)),
    ("async", lambda: AsyncScheduler()),
]

N_ROBOTS = 7
BATCHES = 400


def _issue(factory, seed: int, batches: int = BATCHES):
    scheduler = factory()
    scheduler.reset(N_ROBOTS, np.random.default_rng(seed))
    issued = []
    for _ in range(batches):
        batch = scheduler.next_batch()
        assert batch, "built-in stochastic schedules never exhaust"
        issued.append(batch)
    return issued


class TestOrderedIssue:
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("name,factory", SCHEDULERS)
    def test_batches_have_nondecreasing_look_times(self, name, factory, seed):
        horizon = -np.inf
        for batch in _issue(factory, seed):
            starts = [a.look_time for a in batch]
            assert starts == sorted(starts), f"{name}: batch not internally ordered"
            assert starts[0] >= horizon - 1e-12, (
                f"{name}: batch starts at {starts[0]} before an already-issued "
                f"activation at {horizon}"
            )
            horizon = max(horizon, starts[-1])

    @pytest.mark.parametrize("name,factory", SCHEDULERS)
    def test_per_robot_intervals_never_overlap(self, name, factory):
        last_end = {i: -1.0 for i in range(N_ROBOTS)}
        for batch in _issue(factory, seed=3):
            for activation in batch:
                assert activation.look_time >= last_end[activation.robot_id] - 1e-12, (
                    f"{name}: robot {activation.robot_id} re-activated mid-cycle"
                )
                last_end[activation.robot_id] = max(
                    last_end[activation.robot_id], activation.end_time
                )


class TestBoundedHorizonFairness:
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("name,factory", SCHEDULERS)
    def test_every_robot_appears_in_every_quarter(self, name, factory, seed):
        issued = _issue(factory, seed)
        quarter = len(issued) // 4
        for index in range(4):
            window = issued[index * quarter : (index + 1) * quarter]
            activated = {a.robot_id for batch in window for a in batch}
            assert activated == set(range(N_ROBOTS)), (
                f"{name}: quarter {index} starves robots "
                f"{set(range(N_ROBOTS)) - activated}"
            )


class TestFairnessThroughKernelRuns:
    """The same invariants, observed through full 2D and 3D kernel runs."""

    @pytest.mark.parametrize("name,factory", SCHEDULERS)
    def test_2d_run_activates_every_robot_in_look_order(self, name, factory):
        configuration = random_connected_configuration(6, seed=11)
        result = run_simulation(
            configuration.positions,
            KKNPSAlgorithm(k=1),
            factory(),
            SimulationConfig(
                seed=11, max_activations=150, stop_at_convergence=False
            ),
        )
        assert all(count >= 2 for count in result.activation_counts.values())
        looks = [record.activation.look_time for record in result.records]
        assert looks == sorted(looks)

    @pytest.mark.parametrize("name,factory", SCHEDULERS)
    def test_3d_run_activates_every_robot_in_look_order(self, name, factory):
        configuration = random_connected_configuration3(6, seed=11)
        result = run_simulation3_async(
            configuration.positions,
            KKNPS3Algorithm(k=1),
            factory(),
            AsyncSimulation3Config(
                visibility_range=configuration.visibility_range,
                seed=11,
                max_activations=150,
                stop_at_convergence=False,
            ),
        )
        assert all(count >= 2 for count in result.activation_counts.values())
        times = [sample.time for sample in result.metrics.samples]
        assert times == sorted(times)

    def test_crashed_robots_are_exempt_but_not_contagious(self):
        configuration = random_connected_configuration(6, seed=5)
        result = run_simulation(
            configuration.positions,
            KKNPSAlgorithm(k=1),
            KAsyncScheduler(k=1),
            SimulationConfig(
                seed=5,
                max_activations=150,
                stop_at_convergence=False,
                crashed_robots=(0,),
            ),
        )
        assert result.activation_counts[0] == 0
        assert all(
            count >= 2
            for robot, count in result.activation_counts.items()
            if robot != 0
        )
