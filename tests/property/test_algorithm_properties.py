"""Property-based tests for the motion rules and safe regions."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.algorithms import AndoAlgorithm, KKNPSAlgorithm, kknps_safe_region
from repro.geometry import Point
from repro.model import Snapshot

angles = st.floats(min_value=0.0, max_value=2 * math.pi, allow_nan=False)
distances = st.floats(min_value=0.05, max_value=1.0, allow_nan=False)
neighbour_strategy = st.builds(Point.polar, distances, angles)
neighbour_lists = st.lists(neighbour_strategy, min_size=1, max_size=8)
k_values = st.integers(min_value=1, max_value=8)


class TestKKNPSProperties:
    @given(neighbour_lists, k_values)
    @settings(max_examples=150)
    def test_move_is_bounded_by_scaled_range(self, neighbours, k):
        snapshot = Snapshot(neighbours=tuple(neighbours))
        destination = KKNPSAlgorithm(k=k).compute(snapshot)
        assert destination.norm() <= snapshot.farthest_distance() / (8.0 * k) + 1e-9

    @given(neighbour_lists, k_values)
    @settings(max_examples=150)
    def test_destination_lies_in_every_distant_safe_region(self, neighbours, k):
        algorithm = KKNPSAlgorithm(k=k)
        snapshot = Snapshot(neighbours=tuple(neighbours))
        assert algorithm.destination_respects_safe_regions(snapshot, eps=1e-7)

    @given(neighbour_lists)
    @settings(max_examples=100)
    def test_static_neighbours_remain_visible_after_the_move(self, neighbours):
        # A single activation can never break visibility with a stationary
        # neighbour: the move is at most V_Y/8 toward the half-plane of the
        # distant neighbours.
        snapshot = Snapshot(neighbours=tuple(neighbours))
        v_y = snapshot.farthest_distance()
        destination = KKNPSAlgorithm(k=1).compute(snapshot)
        for p in neighbours:
            assert destination.distance_to(p) <= v_y + 1e-9

    @given(neighbour_lists, st.floats(min_value=0.0, max_value=2 * math.pi))
    @settings(max_examples=100)
    def test_rotation_equivariance(self, neighbours, theta):
        algorithm = KKNPSAlgorithm(k=2)
        base = algorithm.compute(Snapshot(neighbours=tuple(neighbours)))
        rotated = algorithm.compute(
            Snapshot(neighbours=tuple(p.rotated(theta) for p in neighbours))
        )
        assert rotated.distance_to(base.rotated(theta)) <= 1e-7

    @given(neighbour_lists, st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=100)
    def test_scale_equivariance(self, neighbours, scale):
        algorithm = KKNPSAlgorithm(k=1)
        base = algorithm.compute(Snapshot(neighbours=tuple(neighbours)))
        scaled = algorithm.compute(
            Snapshot(neighbours=tuple(p * scale for p in neighbours))
        )
        assert scaled.distance_to(base * scale) <= 1e-7 * max(1.0, scale)


class TestSafeRegionProperties:
    @given(
        st.builds(Point, st.floats(-5, 5), st.floats(-5, 5)),
        neighbour_strategy,
        st.floats(min_value=0.1, max_value=1.0),
        k_values,
    )
    @settings(max_examples=150)
    def test_scaled_region_is_contained_in_unscaled(self, observer, offset, v_y, k):
        assume(offset.norm() > 1e-3)
        neighbour = observer + offset
        base = kknps_safe_region(observer, neighbour, v_y)
        scaled = kknps_safe_region(observer, neighbour, v_y, alpha=1.0 / k)
        assert base.contains_disk(scaled, eps=1e-9)

    @given(neighbour_strategy, st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=100)
    def test_observer_is_always_on_the_region_boundary(self, neighbour, v_y):
        assume(neighbour.norm() > 1e-3)
        region = kknps_safe_region(Point(0, 0), neighbour, v_y)
        assert abs(region.center.norm() - region.radius) <= 1e-9


class TestAndoProperties:
    @given(neighbour_lists)
    @settings(max_examples=100)
    def test_static_neighbours_remain_visible_after_the_move(self, neighbours):
        snapshot = Snapshot(neighbours=tuple(neighbours), visibility_range=1.0)
        destination = AndoAlgorithm().compute(snapshot)
        for p in neighbours:
            assert destination.distance_to(p) <= 1.0 + 1e-7

    @given(neighbour_lists)
    @settings(max_examples=100)
    def test_move_never_leaves_the_sec(self, neighbours):
        from repro.geometry import smallest_enclosing_circle

        snapshot = Snapshot(neighbours=tuple(neighbours), visibility_range=1.0)
        destination = AndoAlgorithm().compute(snapshot)
        sec = smallest_enclosing_circle([Point(0, 0), *neighbours])
        assert sec.contains(destination, eps=1e-6)
