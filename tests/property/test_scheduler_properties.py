"""Property-based tests for the scheduler generators."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers import (
    KAsyncScheduler,
    KNestAScheduler,
    SSyncScheduler,
    validate_k_async,
    validate_k_nesta,
)


def drain(scheduler, n_robots, count, seed):
    scheduler.reset(n_robots, np.random.default_rng(seed))
    activations = []
    while len(activations) < count:
        batch = scheduler.next_batch()
        if not batch:
            break
        activations.extend(batch)
    return activations


class TestKAsyncProperties:
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_generated_schedules_satisfy_their_bound(self, k, n_robots, seed):
        activations = drain(KAsyncScheduler(k=k), n_robots, 80, seed)
        assert validate_k_async(activations, k)

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_issue_order_and_per_robot_sequencing(self, k, n_robots, seed):
        activations = drain(KAsyncScheduler(k=k), n_robots, 80, seed)
        times = [a.look_time for a in activations]
        assert times == sorted(times)
        last_end = {}
        for a in activations:
            assert a.look_time >= last_end.get(a.robot_id, 0.0) - 1e-12
            last_end[a.robot_id] = a.end_time

    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_fairness_every_robot_appears(self, n_robots, seed):
        activations = drain(KAsyncScheduler(k=2), n_robots, 40 * n_robots, seed)
        assert {a.robot_id for a in activations} == set(range(n_robots))


class TestKNestAProperties:
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_generated_schedules_are_k_nesta(self, k, n_robots, seed):
        scheduler = KNestAScheduler(k=k)
        scheduler.reset(n_robots, np.random.default_rng(seed))
        activations = []
        for _ in range(25):
            activations.extend(scheduler.next_batch())
        assert validate_k_nesta(activations, k)


class TestSSyncProperties:
    @given(
        st.floats(min_value=0.05, max_value=1.0),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_rounds_are_well_formed(self, probability, n_robots, seed):
        scheduler = SSyncScheduler(activation_probability=probability)
        scheduler.reset(n_robots, np.random.default_rng(seed))
        for round_index in range(10):
            batch = scheduler.next_batch()
            assert batch
            assert all(a.look_time == float(round_index) for a in batch)
            ids = [a.robot_id for a in batch]
            assert len(set(ids)) == len(ids)
            assert all(a.end_time < round_index + 1 for a in batch)
