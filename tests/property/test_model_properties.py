"""Property-based tests for the robot/configuration model and error models."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry import Point, SymmetricDistortion
from repro.model import (
    Configuration,
    MotionModel,
    PerceptionModel,
    edges_preserved,
    visibility_edges,
)

# Rounded coordinates: see test_geometry_properties for the rationale.
coordinates = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
).map(lambda value: round(value, 6))
points = st.builds(Point, coordinates, coordinates)
point_lists = st.lists(points, min_size=2, max_size=15)


class TestVisibilityProperties:
    @given(point_lists, st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=100)
    def test_edges_monotone_in_range(self, pts, v):
        small = visibility_edges(pts, v)
        large = visibility_edges(pts, 2.0 * v)
        assert small <= large

    @given(point_lists, st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=100)
    def test_contraction_preserves_edges(self, pts, v):
        edges = visibility_edges(pts, v)
        centre = pts[0]
        contracted = [centre + (p - centre) * 0.5 for p in pts]
        assert edges_preserved(edges, contracted, v)

    @given(point_lists, st.floats(min_value=0.1, max_value=5.0), points)
    @settings(max_examples=100)
    def test_edges_invariant_under_translation(self, pts, v, offset):
        assert visibility_edges(pts, v) == visibility_edges([p + offset for p in pts], v)


class TestConfigurationProperties:
    @given(point_lists, st.floats(min_value=0.5, max_value=3.0))
    @settings(max_examples=80)
    def test_diameter_bounds_every_pair(self, pts, v):
        configuration = Configuration.of(pts, v)
        diameter = configuration.hull_diameter()
        for p in pts:
            for q in pts:
                assert p.distance_to(q) <= diameter + 1e-9

    @given(point_lists, st.floats(min_value=0.5, max_value=3.0))
    @settings(max_examples=80)
    def test_hull_radius_at_least_half_diameter(self, pts, v):
        configuration = Configuration.of(pts, v)
        assert configuration.hull_radius() >= configuration.hull_diameter() / 2.0 - 1e-9

    @given(point_lists, st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=80)
    def test_scaling_scales_the_diameter(self, pts, factor):
        configuration = Configuration.of(pts, 1.0)
        scaled = configuration.scaled(factor)
        assert math.isclose(
            scaled.hull_diameter(), factor * configuration.hull_diameter(),
            rel_tol=1e-9, abs_tol=1e-9,
        )


class TestErrorModelProperties:
    @given(
        points,
        st.floats(min_value=0.0, max_value=0.3),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=100)
    def test_perceived_distance_within_relative_band(self, v, delta, seed):
        import numpy as np

        assume(v.norm() > 1e-6)
        model = PerceptionModel(distance_error=delta, bias="random")
        perceived = model.perceive_vector(v, np.random.default_rng(seed))
        assert (1 - delta) * v.norm() - 1e-9 <= perceived.norm() <= (1 + delta) * v.norm() + 1e-9

    @given(
        points,
        st.floats(min_value=0.0, max_value=0.4),
    )
    @settings(max_examples=100)
    def test_distortion_preserves_lengths(self, v, amplitude):
        model = PerceptionModel(distortion=SymmetricDistortion(amplitude=amplitude, frequency=2))
        perceived = model.perceive_vector(v)
        assert math.isclose(perceived.norm(), v.norm(), rel_tol=1e-9, abs_tol=1e-9)

    @given(
        points,
        points,
        st.floats(min_value=0.1, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100)
    def test_realized_move_respects_xi_and_direction(self, origin, target, xi, requested):
        model = MotionModel(xi=xi)
        realized = model.realize(origin, target, requested)
        planned = origin.distance_to(target)
        travelled = origin.distance_to(realized)
        assert travelled <= planned + 1e-9
        assert travelled >= xi * planned - 1e-9
        # The realised endpoint lies on the planned segment (no lateral error).
        if planned > 1e-9:
            from repro.geometry import Segment

            assert Segment(origin, target).distance_to_point(realized) <= 1e-7
