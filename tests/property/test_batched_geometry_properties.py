"""Property suite for the build-once / query-many geometry layer.

Two families of properties:

* the batched locators answer exactly what the scalar predicates answer,
  on arbitrary disk families and query clouds; and
* the destinations the (batched) motion rules plan stay inside every
  distant safe region — the paper's per-activation safety invariant —
  in the plane and in 3-space, with the 3D whole-round batch checked
  row-by-row against its per-activation core.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import KKNPSAlgorithm
from repro.geometry import Point
from repro.geometry.disk import Disk
from repro.geometry.pointloc import (
    DiskIntersectionLocator,
    DiskUnionLocator,
    HalfplaneFan,
    points_in_all_disks,
)
from repro.geometry.tolerances import EPS
from repro.model import Snapshot
from repro.spatial3d.kknps3 import KKNPS3Algorithm

finite = dict(allow_nan=False, allow_infinity=False)
coords = st.floats(min_value=-5.0, max_value=5.0, **finite)
radii = st.floats(min_value=0.05, max_value=3.0, **finite)
disk_strategy = st.builds(lambda x, y, r: Disk(Point(x, y), r), coords, coords, radii)
disk_lists = st.lists(disk_strategy, min_size=0, max_size=12)
query_clouds = st.lists(st.tuples(coords, coords), min_size=1, max_size=40)

angles = st.floats(min_value=0.0, max_value=2 * math.pi, **finite)
distances = st.floats(min_value=0.05, max_value=1.0, **finite)
neighbour_strategy = st.builds(Point.polar, distances, angles)
neighbour_lists = st.lists(neighbour_strategy, min_size=1, max_size=8)
k_values = st.integers(min_value=1, max_value=4)

vec3 = st.tuples(
    st.floats(min_value=-1.0, max_value=1.0, **finite),
    st.floats(min_value=-1.0, max_value=1.0, **finite),
    st.floats(min_value=-1.0, max_value=1.0, **finite),
)
rounds_3d = st.lists(
    st.lists(vec3, min_size=0, max_size=7), min_size=1, max_size=6
)


class TestLocatorProperties:
    @given(disk_lists, query_clouds)
    @settings(max_examples=120)
    def test_locators_equal_scalar_loops(self, disks, cloud):
        px = np.array([x for x, _ in cloud])
        py = np.array([y for _, y in cloud])
        inter = DiskIntersectionLocator(disks).contains_array(px, py)
        union = DiskUnionLocator(disks).contains_array(px, py)
        for i, (x, y) in enumerate(cloud):
            point = Point(x, y)
            assert inter[i] == all(d.contains(point) for d in disks)
            assert union[i] == any(d.contains(point) for d in disks)

    @given(disk_strategy, query_clouds)
    @settings(max_examples=80)
    def test_disk_contains_array_equals_contains(self, disk, cloud):
        px = np.array([x for x, _ in cloud])
        py = np.array([y for _, y in cloud])
        verdicts = disk.contains_array(px, py)
        for i, (x, y) in enumerate(cloud):
            assert verdicts[i] == disk.contains(Point(x, y))

    @given(st.lists(neighbour_strategy, min_size=0, max_size=9), query_clouds)
    @settings(max_examples=80)
    def test_halfplane_fan_equals_dot_loop(self, directions, cloud):
        fan = HalfplaneFan(directions)
        px = np.array([x for x, _ in cloud])
        py = np.array([y for _, y in cloud])
        verdicts = fan.contains_array(px, py)
        for i, (x, y) in enumerate(cloud):
            assert verdicts[i] == all(x * d.x + y * d.y > 0.0 for d in directions)


class TestBatchedDestinations2D:
    @given(st.lists(neighbour_lists, min_size=1, max_size=5), k_values)
    @settings(max_examples=60)
    def test_batched_destinations_lie_in_all_distant_safe_regions(
        self, snapshots, k
    ):
        """One batched membership query certifies a whole round of moves."""
        algorithm = KKNPSAlgorithm(k=k)
        destinations = [
            algorithm.compute(Snapshot(neighbours=tuple(n))) for n in snapshots
        ]
        for neighbours, destination in zip(snapshots, destinations):
            snapshot = Snapshot(neighbours=tuple(neighbours))
            verdict = points_in_all_disks(
                algorithm.safe_regions(snapshot),
                np.array([destination.x]),
                np.array([destination.y]),
                eps=1e-7,
            )
            assert bool(verdict[0])
            assert algorithm.destination_respects_safe_regions(snapshot, eps=1e-7)


class TestBatchedDestinations3D:
    @given(rounds_3d, k_values)
    @settings(max_examples=60, deadline=None)
    def test_round_batch_matches_per_activation_and_safe_balls(self, rows, k):
        algorithm = KKNPS3Algorithm(k=k)
        flat = np.array(
            [p for segment in rows for p in segment], dtype=float
        ).reshape(-1, 3)
        counts = [len(segment) for segment in rows]
        ends = np.cumsum(counts)
        starts = ends - np.array(counts)
        batched = algorithm.compute_array_rounds(flat, starts, ends)

        for a, segment in enumerate(rows):
            relative = np.array(segment, dtype=float).reshape(-1, 3)
            reference = algorithm.compute_array(relative)
            assert (batched[a] == reference).all()

            # The paper's invariant: the move stays in every distant safe ball.
            if len(relative) == 0:
                continue
            norms = np.sqrt((relative * relative).sum(axis=1))
            v_y = float(norms.max())
            if v_y <= EPS:
                continue
            distant = np.flatnonzero(
                norms > algorithm.close_fraction * v_y + EPS
            )
            if distant.size == 0:
                distant = np.array([int(norms.argmax())])
            radius = algorithm.safe_radius(v_y)
            for index in distant:
                length = norms[index]
                if length <= EPS:
                    continue
                center = relative[index] / length * radius
                gap = batched[a] - center
                assert float(np.sqrt((gap * gap).sum())) <= radius + 1e-9
