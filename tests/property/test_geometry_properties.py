"""Property-based tests (hypothesis) for the geometry substrate."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry import (
    ConvexHull,
    Disk,
    Point,
    Segment,
    convex_hull,
    normalize_angle,
    smallest_enclosing_circle,
)

# Coordinates are rounded to six decimals: robot configurations live at unit
# scale, and mixing metre-scale values with denormal (1e-300) offsets only
# exercises floating-point pathologies the library does not target.
coordinates = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
).map(lambda value: round(value, 6))
points = st.builds(Point, coordinates, coordinates)
point_lists = st.lists(points, min_size=1, max_size=25)


class TestPointProperties:
    @given(points, points)
    def test_distance_is_symmetric(self, a, b):
        assert a.distance_to(b) == b.distance_to(a)

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-7

    @given(points, points, st.floats(min_value=0.0, max_value=1.0))
    def test_lerp_stays_between_endpoints(self, a, b, t):
        p = a.lerp(b, t)
        assert p.distance_to(a) + p.distance_to(b) <= a.distance_to(b) + 1e-6

    @given(points, st.floats(min_value=-10.0, max_value=10.0))
    def test_rotation_preserves_norm(self, p, angle):
        assert math.isclose(p.rotated(angle).norm(), p.norm(), rel_tol=1e-9, abs_tol=1e-9)

    @given(points, points, st.floats(min_value=0.0, max_value=50.0))
    def test_toward_lands_at_requested_distance(self, a, b, d):
        assume(a.distance_to(b) > 1e-6)
        p = a.toward(b, d)
        assert math.isclose(a.distance_to(p), d, rel_tol=1e-9, abs_tol=1e-7)


class TestAngleProperties:
    @given(st.floats(min_value=-50.0, max_value=50.0))
    def test_normalize_angle_range(self, theta):
        normalized = normalize_angle(theta)
        assert -math.pi < normalized <= math.pi + 1e-12
        # Normalisation preserves the angle modulo 2*pi.
        assert math.isclose(
            math.cos(normalized), math.cos(theta), abs_tol=1e-9
        ) and math.isclose(math.sin(normalized), math.sin(theta), abs_tol=1e-9)


class TestSegmentProperties:
    @given(points, points, points)
    def test_closest_point_is_on_segment_and_closest_among_samples(self, a, b, q):
        segment = Segment(a, b)
        closest = segment.closest_point(q)
        assert segment.distance_to_point(closest) <= 1e-6
        for t in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert q.distance_to(closest) <= q.distance_to(segment.point_at(t)) + 1e-6


class TestHullProperties:
    @given(point_lists)
    def test_hull_contains_all_points(self, pts):
        hull = ConvexHull.of(pts)
        for p in pts:
            assert hull.contains(p, eps=1e-6)

    @given(point_lists)
    def test_hull_vertices_are_a_subset_of_the_points(self, pts):
        originals = {(p.x, p.y) for p in pts}
        for v in convex_hull(pts):
            assert (v.x, v.y) in originals

    @given(point_lists, st.floats(min_value=0.0, max_value=1.0))
    def test_contraction_shrinks_perimeter(self, pts, factor):
        hull = ConvexHull.of(pts)
        centre = pts[0]
        contracted = [centre + (p - centre) * factor for p in pts]
        assert ConvexHull.of(contracted).perimeter() <= hull.perimeter() + 1e-6


class TestSecProperties:
    @given(point_lists)
    @settings(max_examples=60)
    def test_sec_contains_points_and_is_tight(self, pts):
        disk = smallest_enclosing_circle(pts)
        tolerance = 1e-6 * (1.0 + disk.radius)
        for p in pts:
            assert disk.contains(p, eps=tolerance)
        diameter = max((p.distance_to(q) for p in pts for q in pts), default=0.0)
        assert disk.radius >= diameter / 2.0 - tolerance
        assert disk.radius <= diameter / math.sqrt(3) + tolerance

    @given(point_lists, points)
    @settings(max_examples=40)
    def test_sec_is_translation_equivariant(self, pts, offset):
        base = smallest_enclosing_circle(pts)
        moved = smallest_enclosing_circle([p + offset for p in pts])
        assert math.isclose(base.radius, moved.radius, rel_tol=1e-6, abs_tol=1e-6)
        assert moved.center.distance_to(base.center + offset) <= 1e-5


class TestDiskProperties:
    @given(points, st.floats(min_value=0.01, max_value=10.0), points)
    def test_projection_is_inside_and_idempotent(self, center, radius, q):
        disk = Disk(center, radius)
        projected = disk.closest_point_to(q)
        assert disk.contains(projected, eps=1e-7)
        assert projected.distance_to(disk.closest_point_to(projected)) <= 1e-7
