"""Concurrency battery: overlapping sweeps execute each key exactly once.

Two :class:`SweepRunner`s with overlapping grids share one store; the
claims table must partition the overlap so every run key is computed by
exactly one of them — the other serves it as a peer row — on the serial
backend and on a multi-process work-stealing pool alike.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from collections import Counter
from pathlib import Path

import pytest

from repro.sweeps import RunSpec, SweepRunner, make_backend
from repro.sweeps.runner import execute_run

RUNS = [
    RunSpec(
        algorithm="kknps", scheduler="ssync", workload="line", n_robots=5,
        seed=seed, epsilon=0.1, max_activations=80,
    )
    for seed in range(12)
]


def _counting_run_fn(log_path: str, spec: RunSpec) -> dict:
    """Execute a run, logging its key (append is atomic for short lines)."""
    time.sleep(0.03)  # widen the overlap window so claims actually contend
    line = (spec.run_key + "\n").encode("utf-8")
    fd = os.open(log_path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, line)
    finally:
        os.close(fd)
    return execute_run(spec)


def _executions(log_path: Path) -> Counter:
    if not log_path.exists():
        return Counter()
    return Counter(log_path.read_text().splitlines())


class TestOverlappingRunners:
    @pytest.mark.parametrize("backend_name,workers", [
        ("serial", 1),
        ("work-stealing", 2),
    ])
    def test_each_key_executes_exactly_once_between_two_runners(
        self, tmp_path, backend_name, workers
    ):
        store = tmp_path / "results.sqlite"
        log = tmp_path / "executions.log"
        run_fn = functools.partial(_counting_run_fn, str(log))
        # Two runners whose grids overlap on RUNS[4:8].
        grids = (RUNS[:8], RUNS[4:])
        results = [None, None]
        errors = []

        def drive(index: int) -> None:
            try:
                runner = SweepRunner(
                    grids[index],
                    backend=make_backend(
                        backend_name, workers=workers, run_fn=run_fn
                    ),
                    workers=workers,
                    store=store,
                    store_poll_s=0.01,
                )
                results[index] = runner.run()
            except BaseException as error:  # surfaced below, not swallowed
                errors.append(error)

        threads = [threading.Thread(target=drive, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        assert all(result is not None for result in results)

        all_keys = {spec.run_key for spec in RUNS}
        counts = _executions(log)
        # Exactly-once: every key ran, and none ran twice.
        assert set(counts) == all_keys
        assert all(count == 1 for count in counts.values()), counts
        assert results[0].executed + results[1].executed == len(all_keys)

        # Both runners still return their full row set, in order.
        for result, grid in zip(results, grids):
            assert [row["run_key"] for row in result.rows] == [
                spec.run_key for spec in grid
            ]
            assert result.executed + result.store_hits == len(grid)

        # The overlap rows are literally shared: same stored payload.
        overlap = [spec.run_key for spec in RUNS[4:8]]
        for key in overlap:
            assert results[0].row_for(key) == results[1].row_for(key)

    def test_sequential_runners_share_through_the_store(self, tmp_path):
        store = tmp_path / "results.sqlite"
        log = tmp_path / "executions.log"
        run_fn = functools.partial(_counting_run_fn, str(log))
        first = SweepRunner(
            RUNS[:8],
            backend=make_backend("serial", run_fn=run_fn),
            store=store,
        ).run()
        second = SweepRunner(
            RUNS[4:],
            backend=make_backend("serial", run_fn=run_fn),
            store=store,
        ).run()
        counts = _executions(log)
        assert all(count == 1 for count in counts.values()), counts
        assert first.executed == 8
        assert second.executed == 4
        assert second.store_hits == 4
