"""Crash battery: SIGKILL mid-ingest leaves no torn rows; resume completes.

A subprocess runs a slowed sweep against a store and is SIGKILLed while
rows are landing.  The store must reopen clean (sqlite integrity, whole
JSON payloads only), a resuming runner must finish the sweep executing
only what is missing, and the final row set must be bit-identical (up to
timing) to an uninterrupted run against a fresh store.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.store import ResultsStore
from repro.sweeps import RunSpec, run_sweep

SRC = Path(__file__).resolve().parents[2] / "src"

RUNS = [
    RunSpec(
        algorithm="kknps", scheduler="ssync", workload="line", n_robots=5,
        seed=seed, epsilon=0.1, max_activations=80,
    )
    for seed in range(8)
]

#: A sweep whose every run dawdles first, so the parent can kill the
#: process while ingest is provably in flight.
_VICTIM_SCRIPT = """
import sys, time
sys.path.insert(0, {src!r})
sys.path.insert(0, {here!r})  # makes RUNS importable
from repro.sweeps import SweepRunner, make_backend
from repro.sweeps.runner import execute_run
from test_store_crash import RUNS

def slow_run(spec):
    time.sleep(0.15)
    return execute_run(spec)

SweepRunner(
    RUNS, backend=make_backend("serial", run_fn=slow_run), store={store!r}
).run()
"""


def _spawn_victim(tmp_path: Path, store: Path) -> subprocess.Popen:
    script = tmp_path / "victim.py"
    here = Path(__file__).resolve().parent
    script.write_text(
        _VICTIM_SCRIPT.format(src=str(SRC), here=str(here), store=str(store))
    )
    return subprocess.Popen(
        [sys.executable, str(script)],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


class TestKillMidIngest:
    def test_store_survives_sigkill_and_resume_is_bit_identical(self, tmp_path):
        store_path = tmp_path / "results.sqlite"
        victim = _spawn_victim(tmp_path, store_path)
        try:
            # Wait until at least two rows landed, then kill without mercy.
            deadline = time.monotonic() + 60
            with ResultsStore(store_path) as watcher:
                while len(watcher) < 2:
                    assert time.monotonic() < deadline, "victim made no progress"
                    assert victim.poll() is None, "victim died on its own"
                    time.sleep(0.02)
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30)
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait(timeout=30)

        # The store reopens clean: sqlite integrity holds and every stored
        # payload is a whole row (get() json-parses each one).
        with ResultsStore(store_path) as store:
            assert store.integrity_ok()
            ingested = len(store)
            assert 2 <= ingested < len(RUNS)
            for key in store.run_keys():
                row = store.get(key)
                assert row["run_key"] == key
                assert "converged" in row

        # Resume: only the missing keys execute (stale claims of the dead
        # pid do not stall it), and the result matches a clean run.
        resumed = run_sweep(RUNS, store=store_path)
        assert resumed.store_hits == ingested
        assert resumed.executed == len(RUNS) - ingested

        reference = run_sweep(RUNS, store=tmp_path / "fresh.sqlite")
        assert resumed.deterministic_rows() == reference.deterministic_rows()
        assert (
            resumed.to_table().render().splitlines()[1:]
            == reference.to_table().render().splitlines()[1:]
        )

        # And no claims linger once the sweep completed.
        with ResultsStore(store_path) as store:
            assert store.claim_count() == 0
            assert len(store) == len(RUNS)
