"""End-to-end dedup equivalence: the store serves cached science verbatim.

The ISSUE-8 acceptance battery: one mixed 2D/3D sweep run twice against
the same store (and once with no store at all) — the second pass
executes zero runs, every row comes from the store, and all three row
sets are bit-identical.
"""

from __future__ import annotations

from repro.store import ResultsStore
from repro.sweeps import RunSpec, run_sweep

#: A mixed planar/3D run list, the shape SweepSpec grids cannot express
#: (grids are single-dimension by validation) — exactly what the global
#: store must still dedup correctly.
MIXED_RUNS = [
    RunSpec(
        algorithm="kknps", scheduler="ssync", workload="line", n_robots=5,
        seed=seed, epsilon=0.1, max_activations=100,
    )
    for seed in range(4)
] + [
    RunSpec(
        algorithm="kknps3", scheduler="ssync3", workload="line3", n_robots=6,
        seed=seed, algorithm_params=(("k", 1),), scheduler_k=1,
        epsilon=0.1, max_activations=40,
    )
    for seed in range(2)
]


class TestDedupEquivalence:
    def test_second_pass_executes_nothing_and_rows_are_bit_identical(self, tmp_path):
        store = tmp_path / "results.sqlite"

        first = run_sweep(MIXED_RUNS, store=store)
        second = run_sweep(MIXED_RUNS, store=store)
        bare = run_sweep(MIXED_RUNS)  # the --no-store control

        assert first.executed == len(MIXED_RUNS)
        assert first.store_hits == 0

        # Zero executions on the cached pass: everything is served.
        assert second.executed == 0
        assert second.resumed == 0
        assert second.store_hits == len(MIXED_RUNS)

        # The cached rows are *literally* the stored ones — wall_time_s
        # included — so the second pass is bit-identical to the first.
        assert second.rows == first.rows

        # And both match an uncached recomputation up to timing fields.
        assert second.deterministic_rows() == bare.deterministic_rows()
        assert first.deterministic_rows() == bare.deterministic_rows()

    def test_rows_preserve_expansion_order_on_the_cached_pass(self, tmp_path):
        store = tmp_path / "results.sqlite"
        run_sweep(MIXED_RUNS, store=store)
        cached = run_sweep(MIXED_RUNS, store=store)
        assert [row["run_key"] for row in cached.rows] == [
            spec.run_key for spec in MIXED_RUNS
        ]

    def test_fully_cached_sweep_spins_up_no_workers(self, tmp_path):
        store = tmp_path / "results.sqlite"
        run_sweep(MIXED_RUNS, store=store)
        cached = run_sweep(
            MIXED_RUNS, store=store, workers=2, backend="work-stealing"
        )
        assert cached.executed == 0
        assert cached.store_hits == len(MIXED_RUNS)
        # No run reached the backend, so its pool never started.
        assert cached.stats is None or cached.stats.runs == 0

    def test_partial_cache_executes_only_the_misses(self, tmp_path):
        store = tmp_path / "results.sqlite"
        warm = run_sweep(MIXED_RUNS[:3], store=store)
        assert warm.executed == 3
        mixed = run_sweep(MIXED_RUNS, store=store)
        assert mixed.store_hits == 3
        assert mixed.executed == len(MIXED_RUNS) - 3
        full = run_sweep(MIXED_RUNS, store=store)
        assert full.executed == 0
        assert full.store_hits == len(MIXED_RUNS)

    def test_store_composes_with_jsonl_resume(self, tmp_path):
        store = tmp_path / "results.sqlite"
        out = tmp_path / "rows.jsonl"
        first = run_sweep(MIXED_RUNS, store=store, jsonl_path=out)
        again = run_sweep(MIXED_RUNS, store=store, jsonl_path=out)
        # JSONL resume claims the rows first; the store serves nothing new.
        assert again.executed == 0
        assert again.resumed == len(MIXED_RUNS)
        assert again.rows == first.rows

    def test_jsonl_rows_seed_the_store_for_other_sweeps(self, tmp_path):
        store = tmp_path / "results.sqlite"
        out = tmp_path / "rows.jsonl"
        run_sweep(MIXED_RUNS, store=store, jsonl_path=out)
        # A different sweep (no JSONL) over the same keys: served from the
        # store, which ingested the JSONL rows during the first run.
        fresh = run_sweep(MIXED_RUNS, store=store)
        assert fresh.executed == 0
        assert fresh.store_hits == len(MIXED_RUNS)
        with ResultsStore(store) as handle:
            assert len(handle) == len(MIXED_RUNS)
