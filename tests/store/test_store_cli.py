"""Tests for the ``python -m repro store`` verbs and the sweep --store flags."""

from __future__ import annotations

import json

from repro.__main__ import main as repro_main
from repro.store import ResultsStore
from repro.store.cli import main as store_main
from repro.sweeps import RunSpec, run_sweep


def _jsonl(tmp_path, name, keys):
    path = tmp_path / name
    path.write_text(
        "".join(
            json.dumps({"run_key": key, "converged": True}) + "\n" for key in keys
        )
    )
    return path


class TestStoreCli:
    def test_import_is_idempotent(self, tmp_path, capsys):
        store = tmp_path / "s.sqlite"
        a = _jsonl(tmp_path, "a.jsonl", ["k1", "k2"])
        b = _jsonl(tmp_path, "b.jsonl", ["k2", "k3"])
        assert store_main(["import", str(a), str(b), "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "3 rows imported" in out
        assert store_main(["import", str(a), "--store", str(store)]) == 0
        assert "0 rows imported" in capsys.readouterr().out
        with ResultsStore(store) as handle:
            assert handle.run_keys() == ["k1", "k2", "k3"]
            assert handle.provenance("k1")["sweep_label"] == "a.jsonl"

    def test_stats_json(self, tmp_path, capsys):
        store = tmp_path / "s.sqlite"
        a = _jsonl(tmp_path, "a.jsonl", ["k1"])
        store_main(["import", str(a), "--store", str(store), "--label", "legacy"])
        capsys.readouterr()
        assert store_main(["stats", "--store", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"] == 1
        assert payload["by_source"] == {"jsonl-import": 1}

    def test_dispatch_through_python_m_repro(self, tmp_path, capsys):
        store = tmp_path / "s.sqlite"
        a = _jsonl(tmp_path, "a.jsonl", ["k1"])
        assert repro_main(["store", "import", str(a), "--store", str(store)]) == 0
        assert "1 rows imported" in capsys.readouterr().out


class TestSweepCliStoreFlags:
    RUNS = [
        RunSpec(
            algorithm="kknps", scheduler="ssync", workload="line", n_robots=5,
            seed=seed, epsilon=0.1, max_activations=80,
        )
        for seed in range(2)
    ]

    def test_sweep_store_flag_dedups_second_invocation(self, tmp_path, capsys):
        from repro.sweeps.cli import main as sweep_main

        store = tmp_path / "s.sqlite"
        argv = [
            "--algorithms", "kknps", "--schedulers", "ssync",
            "--workloads", "line", "--n", "5", "--seeds", "2",
            "--max-activations", "80", "--quiet", "--store", str(store),
        ]
        assert sweep_main(argv) == 0
        first = capsys.readouterr().out
        assert "0/2 rows served from the results store" in first
        assert sweep_main(argv) == 0
        second = capsys.readouterr().out
        assert "2/2 rows served from the results store" in second

    def test_no_store_ignores_the_store(self, tmp_path, capsys):
        from repro.sweeps.cli import main as sweep_main

        store = tmp_path / "s.sqlite"
        argv = [
            "--algorithms", "kknps", "--schedulers", "ssync",
            "--workloads", "line", "--n", "5", "--seeds", "1",
            "--max-activations", "80", "--quiet",
            "--store", str(store), "--no-store",
        ]
        assert sweep_main(argv) == 0
        assert not store.exists()
        assert "results store" not in capsys.readouterr().out
