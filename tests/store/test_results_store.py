"""Unit tests for the sqlite results store: rows, claims, imports."""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.store import ROW_SCHEMA_VERSION, ResultsStore, StoreError


def _row(key: str, **extra: object) -> dict:
    row = {
        "run_key": key,
        "converged": True,
        "final_diameter": 0.1 + 0.2,  # a float that only repr round-trips
        "wall_time_s": 0.5,
    }
    row.update(extra)
    return row


class TestRows:
    def test_put_get_round_trip_is_bit_identical(self, tmp_path):
        with ResultsStore(tmp_path / "s.sqlite") as store:
            row = _row("k1", nested_ok=False, activations=123)
            assert store.put(row) is True
            assert store.get("k1") == row
            got = store.get("k1")
            assert got["final_diameter"] == row["final_diameter"]
            assert json.dumps(got, sort_keys=True) == json.dumps(row, sort_keys=True)

    def test_first_writer_wins(self, tmp_path):
        with ResultsStore(tmp_path / "s.sqlite") as store:
            first = _row("k1", wall_time_s=1.0)
            second = _row("k1", wall_time_s=9.0)
            assert store.put(first) is True
            assert store.put(second) is False
            assert store.get("k1") == first

    def test_miss_returns_none(self, tmp_path):
        with ResultsStore(tmp_path / "s.sqlite") as store:
            assert store.get("absent") is None
            assert "absent" not in store
            assert store.provenance("absent") is None

    def test_get_many_spans_bind_parameter_chunks(self, tmp_path):
        with ResultsStore(tmp_path / "s.sqlite") as store:
            keys = [f"k{i}" for i in range(1200)]
            store.put_many(_row(key) for key in keys)
            hits = store.get_many(keys + ["absent"])
            assert sorted(hits) == sorted(keys)
            assert len(store) == 1200

    def test_rows_under_foreign_schema_version_are_misses(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with ResultsStore(path) as store:
            store.put(_row("k1"))
        conn = sqlite3.connect(str(path))
        conn.execute(
            "UPDATE results SET schema_version = ? WHERE run_key = 'k1'",
            (ROW_SCHEMA_VERSION + 1,),
        )
        conn.commit()
        conn.close()
        with ResultsStore(path) as store:
            assert store.get("k1") is None
            assert store.get_many(["k1"]) == {}
            assert "k1" not in store
            assert len(store) == 0
            # The key is executable again: a claim on it succeeds.
            assert store.claim("k1") is True
            # Provenance still sees the physical row.
            assert store.provenance("k1")["schema_version"] == ROW_SCHEMA_VERSION + 1

    def test_put_rejects_rows_without_run_key(self, tmp_path):
        with ResultsStore(tmp_path / "s.sqlite") as store:
            with pytest.raises(ValueError, match="run_key"):
                store.put({"converged": True})

    def test_provenance_records_label_and_source(self, tmp_path):
        with ResultsStore(tmp_path / "s.sqlite") as store:
            store.put(_row("k1"), sweep_label="fig3", source="executed")
            prov = store.provenance("k1")
            assert prov["sweep_label"] == "fig3"
            assert prov["source"] == "executed"
            assert prov["pid"] > 0

    def test_newer_layout_version_is_refused(self, tmp_path):
        path = tmp_path / "s.sqlite"
        ResultsStore(path).close()
        conn = sqlite3.connect(str(path))
        conn.execute("UPDATE store_meta SET value = '99' WHERE key = 'layout_version'")
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="layout version 99"):
            ResultsStore(path)


class TestClaims:
    def test_claim_is_exclusive_across_handles(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with ResultsStore(path) as a, ResultsStore(path) as b:
            assert a.claim("k1") is True
            assert b.claim("k1") is False
            assert a.claim("k1") is True  # re-entrant for the owner
            info = b.claim_info("k1")
            assert info.owner == a.owner_id

    def test_put_releases_the_claim(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with ResultsStore(path) as a, ResultsStore(path) as b:
            assert a.claim("k1") is True
            a.put(_row("k1"))
            assert a.claim_count() == 0
            # The key is stored now, so nobody claims it again.
            assert b.claim("k1") is False
            assert a.claim("k1") is False

    def test_release_only_drops_own_claims(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with ResultsStore(path) as a, ResultsStore(path) as b:
            a.claim("k1")
            assert b.release("k1") is False
            assert a.claim_count() == 1
            assert b.release("k1", force=True) is True
            assert a.claim_count() == 0

    def test_dead_pid_claim_is_stolen(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with ResultsStore(path) as store:
            # Forge a same-host claim from a pid that cannot exist.
            conn = sqlite3.connect(str(path))
            conn.execute(
                "INSERT INTO claims (run_key, owner, host, pid, claimed_at) "
                "VALUES ('k1', 'ghost', ?, ?, ?)",
                (store._host, 2 ** 22 + 1, 1e18),
            )
            conn.commit()
            conn.close()
            assert store.claim("k1") is True
            assert store.claim_info("k1").owner == store.owner_id

    def test_expired_claim_is_stolen_even_from_a_live_process(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with ResultsStore(path) as a, ResultsStore(path) as b:
            a.claim("k1")
            assert b.claim("k1", ttl_s=3600.0) is False
            assert b.claim("k1", ttl_s=0.0) is True
            assert b.claim_info("k1").owner == b.owner_id


class TestImportAndStats:
    def test_import_jsonl_ingests_and_labels(self, tmp_path):
        jsonl = tmp_path / "sweep.jsonl"
        rows = [_row(f"k{i}") for i in range(3)]
        jsonl.write_text("".join(json.dumps(r) + "\n" for r in rows))
        with ResultsStore(tmp_path / "s.sqlite") as store:
            assert store.import_jsonl(jsonl) == 3
            assert store.import_jsonl(jsonl) == 0  # idempotent
            assert store.get("k1") == rows[1]
            assert store.provenance("k0")["sweep_label"] == "sweep.jsonl"
            assert store.provenance("k0")["source"] == "jsonl-import"

    def test_import_repairs_a_truncated_last_line(self, tmp_path):
        jsonl = tmp_path / "sweep.jsonl"
        rows = [_row(f"k{i}") for i in range(2)]
        text = "".join(json.dumps(r) + "\n" for r in rows)
        jsonl.write_text(text + '{"run_key": "k2", "conv')  # torn mid-write
        with ResultsStore(tmp_path / "s.sqlite") as store:
            with pytest.warns(UserWarning, match="truncated"):
                assert store.import_jsonl(jsonl) == 2
            assert "k2" not in store
            # The repair dropped the torn tail: the file ends clean.
            assert jsonl.read_text() == text

    def test_stats_counts_rows_claims_and_sources(self, tmp_path):
        with ResultsStore(tmp_path / "s.sqlite") as store:
            store.put(_row("k1"), source="executed")
            store.put(_row("k2"), source="jsonl-import")
            store.claim("k3")
            stats = store.stats()
            assert stats["rows"] == 2
            assert stats["claims"] == 1
            assert stats["by_source"] == {"executed": 1, "jsonl-import": 1}
            assert store.integrity_ok()

    def test_run_keys_lists_current_schema_rows(self, tmp_path):
        with ResultsStore(tmp_path / "s.sqlite") as store:
            store.put_many([_row("b"), _row("a")])
            assert store.run_keys() == ["a", "b"]
