"""Tests for the sweep job service: submit, poll, results, cached re-submit."""

from __future__ import annotations

import threading

import pytest

from repro.service import JobManager, ServiceClient, ServiceError, make_server
from repro.sweeps import SweepSpec

#: A tiny grid: 8 runs, sub-second even serially.
SMALL_SPEC = SweepSpec(
    algorithms=("kknps",),
    schedulers=("ssync", "k-async"),
    workloads=("line",),
    n_robots=(5,),
    seeds=(0, 1),
    scheduler_k=2,
    epsilon=0.08,
    max_activations=120,
)


@pytest.fixture
def service(tmp_path):
    """A live in-process service on an ephemeral port, plus its client."""
    manager = JobManager(tmp_path / "store.sqlite", tmp_path / "jobs")
    server = make_server(manager, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    manager.start()
    host, port = server.server_address[:2]
    try:
        yield ServiceClient(host, port)
    finally:
        server.shutdown()
        server.server_close()
        manager.shutdown()
        thread.join(timeout=30)


class TestJobLifecycle:
    def test_submit_poll_results(self, service):
        submitted = service.submit(SMALL_SPEC)
        assert submitted["total"] == SMALL_SPEC.size()
        job_id = submitted["job_id"]

        status = service.wait(job_id, timeout_s=120)
        assert status["state"] == "done"
        assert status["done"] == SMALL_SPEC.size()
        assert status["executed"] == SMALL_SPEC.size()
        assert status["store_hits"] == 0
        assert status["eta_s"] == 0.0
        assert status["cost_done"] == status["cost_total"] > 0

        results = service.results(job_id, include_rows=True)
        assert results["rows_added"] == SMALL_SPEC.size()
        assert [row["run_key"] for row in results["rows"]] == [
            spec.run_key for spec in SMALL_SPEC.expand()
        ]
        assert "Sweep aggregate" in results["table"]

    def test_resubmit_is_all_cache_hits_and_bit_identical(self, service):
        first_id = service.submit(SMALL_SPEC)["job_id"]
        service.wait(first_id, timeout_s=120)

        second_id = service.submit(SMALL_SPEC)["job_id"]
        assert second_id != first_id
        status = service.wait(second_id, timeout_s=120)
        assert status["state"] == "done"
        assert status["executed"] == 0
        assert status["store_hits"] == SMALL_SPEC.size()
        assert status["sources"] == {"store": SMALL_SPEC.size()}

        first = service.results(first_id, include_rows=True)
        second = service.results(second_id, include_rows=True)
        # The served rows are *literally* the stored ones.
        assert second["rows"] == first["rows"]
        # The table body (everything below the provenance title) matches.
        assert (
            second["table"].splitlines()[1:] == first["table"].splitlines()[1:]
        )

    def test_submit_wire_format_round_trips(self, service):
        # Submit the dict form — exactly what a remote client POSTs.
        submitted = service.submit(SMALL_SPEC.to_dict())
        status = service.wait(submitted["job_id"], timeout_s=120)
        assert status["state"] == "done"

    def test_concurrent_clients_overlapping_grids(self, tmp_path, service):
        other = SweepSpec(
            algorithms=("kknps",),
            schedulers=("ssync", "k-async"),
            workloads=("line",),
            n_robots=(5,),
            seeds=(1, 2),  # overlaps SMALL_SPEC on seed 1
            scheduler_k=2,
            epsilon=0.08,
            max_activations=120,
        )
        a = service.submit(SMALL_SPEC)["job_id"]
        b = service.submit(other)["job_id"]
        status_a = service.wait(a, timeout_s=120)
        status_b = service.wait(b, timeout_s=120)
        assert status_a["state"] == status_b["state"] == "done"
        # Between the two jobs, the overlap executed exactly once.
        total_executed = status_a["executed"] + status_b["executed"]
        distinct = {
            spec.run_key for spec in SMALL_SPEC.expand() + other.expand()
        }
        assert total_executed == len(distinct)

    def test_health_and_job_listing(self, service):
        health = service.health()
        assert health["status"] == "ok"
        job_id = service.submit(SMALL_SPEC)["job_id"]
        service.wait(job_id, timeout_s=120)
        listed = service.jobs()["jobs"]
        assert [job["job_id"] for job in listed] == [job_id]


class TestErrorPaths:
    def test_unknown_job_id_is_404(self, service):
        with pytest.raises(ServiceError, match="404") as excinfo:
            service.status("job-9999-deadbeef")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError, match="404"):
            service.results("job-9999-deadbeef")

    def test_invalid_spec_is_400(self, service):
        with pytest.raises(ServiceError, match="400") as excinfo:
            service.submit({"algorithms": ["no-such-algorithm"]})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError, match="400"):
            service.submit({"not_an_axis": [1]})

    def test_unknown_job_option_is_400(self, service):
        with pytest.raises(ServiceError, match="unknown job options"):
            service.submit(SMALL_SPEC, options={"wrokers": 2})

    def test_unreachable_service_raises(self):
        client = ServiceClient("127.0.0.1", 1, timeout_s=2.0)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()

    def test_failed_job_reports_its_error(self, tmp_path):
        manager = JobManager(tmp_path / "store.sqlite", tmp_path / "jobs")
        with manager:
            job_id = manager.submit(
                SMALL_SPEC, options={"backend": "carrier-pigeon"}
            )
            deadline_status = None
            import time

            for _ in range(200):
                deadline_status = manager.status(job_id)
                if deadline_status["state"] == "failed":
                    break
                time.sleep(0.05)
            assert deadline_status["state"] == "failed"
            assert "unknown backend" in deadline_status["error"]


class TestSweepSpecWireFormat:
    def test_round_trip_preserves_the_grid(self):
        data = SMALL_SPEC.to_dict()
        assert data["algorithms"] == ["kknps"]
        assert SweepSpec.from_dict(data) == SMALL_SPEC

    def test_unknown_keys_rejected(self):
        data = SMALL_SPEC.to_dict()
        data["frobnication"] = True
        with pytest.raises(TypeError):
            SweepSpec.from_dict(data)
