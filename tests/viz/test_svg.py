"""Tests for the SVG rendering helpers."""

import io

import pytest

from repro.algorithms import KKNPSAlgorithm
from repro.engine import SimulationConfig, TrajectoryRecorder, run_simulation
from repro.geometry import Disk, Point
from repro.schedulers import FSyncScheduler
from repro.viz import SvgCanvas, render_configuration, render_safe_regions, render_trajectories
from repro.workloads import line_configuration, ring_configuration


class TestSvgCanvas:
    def test_fit_required_before_drawing(self):
        canvas = SvgCanvas()
        with pytest.raises(RuntimeError):
            canvas.add_dot((0, 0))
        with pytest.raises(ValueError):
            canvas.fit([])

    def test_world_to_pixel_mapping(self):
        canvas = SvgCanvas(width=200, height=200, margin=10)
        canvas.fit([(0, 0), (1, 1)], padding=0.0)
        x0, y0 = canvas.to_pixel((0, 0))
        x1, y1 = canvas.to_pixel((1, 1))
        # x grows to the right, y is flipped (SVG origin at the top left).
        assert x1 > x0
        assert y1 < y0

    def test_render_produces_wellformed_svg(self):
        canvas = SvgCanvas()
        canvas.fit([(0, 0), (2, 2)])
        canvas.add_title("demo")
        canvas.add_dot((0, 0), label="a")
        canvas.add_line((0, 0), (2, 2), dashed=True)
        canvas.add_circle((1, 1), 0.5, fill="#ff0000")
        canvas.add_polyline([(0, 0), (1, 0), (1, 1)])
        canvas.add_text((2, 2), "end")
        text = canvas.render()
        assert text.startswith("<svg")
        assert text.rstrip().endswith("</svg>")
        for tag in ("<circle", "<line", "<polyline", "<text"):
            assert tag in text

    def test_write_to_stream_and_path(self, tmp_path):
        canvas = SvgCanvas()
        canvas.fit([(0, 0), (1, 1)])
        canvas.add_dot((0.5, 0.5))
        stream = io.StringIO()
        canvas.write(stream)
        assert "<svg" in stream.getvalue()
        path = tmp_path / "out.svg"
        canvas.write(path)
        assert path.read_text().startswith("<svg")


class TestRenderers:
    def test_render_configuration(self):
        configuration = ring_configuration(6)
        canvas = render_configuration(
            configuration, show_edges=True, show_ranges=True,
            labels=[f"r{i}" for i in range(6)], title="ring",
        )
        text = canvas.render()
        assert text.count("<circle") >= 12  # 6 dots + 6 range circles
        assert "ring" in text

    def test_render_trajectories_from_a_run(self):
        configuration = line_configuration(3, spacing=0.6)
        result = run_simulation(
            configuration.positions,
            KKNPSAlgorithm(k=1),
            FSyncScheduler(),
            SimulationConfig(max_activations=60, convergence_epsilon=0.05,
                             record_trajectories=True),
        )
        canvas = render_trajectories(result.trajectories, title="run")
        text = canvas.render()
        assert "<polyline" in text

    def test_render_trajectories_requires_data(self):
        with pytest.raises(ValueError):
            render_trajectories(TrajectoryRecorder())

    def test_render_safe_regions(self):
        neighbours = [Point(0.9, 0.0), Point(0.0, 0.8)]
        regions = [Disk(Point(0.1, 0.0), 0.1), Disk(Point(0.0, 0.1), 0.1)]
        canvas = render_safe_regions(
            neighbours, regions, destination=Point(0.05, 0.05), title="regions"
        )
        text = canvas.render()
        assert "observer" in text
        assert "destination" in text
        assert text.count("N") >= 2
