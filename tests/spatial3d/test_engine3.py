"""Property tests pinning the 3D array engine bit-identical to the object path.

Mirrors the planar engine's methodology (`tests/engine/test_engine_modes.py`):
the retained per-robot reference loop (``engine_mode="object"``) defines
the semantics, and the vectorized array mode must reproduce its floats
exactly — positions, diameter histories, convergence/cohesion flags —
across frames on/off, activation subsets, non-rigid motion, asynchrony
bounds and both neighbour-query paths (grid and dense).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.spatial3d import (
    KKNPS3Algorithm,
    Simulation3Config,
    lattice_configuration3,
    line_configuration3,
    positions_as_array3,
    random_connected_configuration3,
    run_simulation3,
)


def _final_positions(result) -> np.ndarray:
    return positions_as_array3(result.final_configuration.positions)


def _run(positions, algorithm, **config):
    return run_simulation3(positions, algorithm, Simulation3Config(**config))


def assert_runs_identical(result_a, result_b):
    """Bit-identical outcomes: positions, history and every flag."""
    assert np.array_equal(_final_positions(result_a), _final_positions(result_b))
    assert result_a.diameter_history == result_b.diameter_history
    assert result_a.rounds_executed == result_b.rounds_executed
    assert result_a.converged == result_b.converged
    assert result_a.cohesion_maintained == result_b.cohesion_maintained
    assert result_a.activations_executed == result_b.activations_executed


class TestArrayObjectParity:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("rotate_frames", [True, False])
    def test_random_workloads_bit_identical(self, seed, rotate_frames):
        configuration = random_connected_configuration3(12, seed=seed)
        base = dict(
            visibility_range=configuration.visibility_range,
            max_rounds=80,
            convergence_epsilon=0.05,
            activation_probability=0.6,
            xi=0.5,
            seed=seed,
            rotate_frames=rotate_frames,
        )
        array = _run(configuration.positions, KKNPS3Algorithm(k=2),
                     engine_mode="array", **base)
        obj = _run(configuration.positions, KKNPS3Algorithm(k=2),
                   engine_mode="object", **base)
        assert_runs_identical(array, obj)

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_asynchrony_bounds_bit_identical(self, k):
        configuration = lattice_configuration3(2, spacing=0.6)
        base = dict(
            visibility_range=configuration.visibility_range,
            max_rounds=200,
            convergence_epsilon=0.05,
            activation_probability=0.7,
            xi=0.5,
            seed=11 + k,
        )
        array = _run(configuration.positions, KKNPS3Algorithm(k=k),
                     engine_mode="array", **base)
        obj = _run(configuration.positions, KKNPS3Algorithm(k=k),
                   engine_mode="object", **base)
        assert_runs_identical(array, obj)

    def test_full_activation_rigid_bit_identical(self):
        configuration = line_configuration3(7, spacing=0.7)
        base = dict(
            visibility_range=configuration.visibility_range,
            max_rounds=150,
            convergence_epsilon=0.05,
            activation_probability=1.0,
            xi=1.0,
            seed=5,
        )
        array = _run(configuration.positions, KKNPS3Algorithm(k=1),
                     engine_mode="array", **base)
        obj = _run(configuration.positions, KKNPS3Algorithm(k=1),
                   engine_mode="object", **base)
        assert_runs_identical(array, obj)

    def test_coincident_robots_bit_identical(self):
        # Coincident robots (distance below the visibility tolerance) are
        # invisible to each other on both paths; a stack of them must not
        # desynchronize the engines.
        base_configuration = random_connected_configuration3(6, seed=3)
        positions = list(base_configuration.positions)
        positions.append(positions[0])  # exact coincidence
        positions.append(positions[2])
        config = dict(
            visibility_range=base_configuration.visibility_range,
            max_rounds=60,
            convergence_epsilon=0.05,
            activation_probability=0.8,
            xi=0.5,
            seed=9,
        )
        array = _run(positions, KKNPS3Algorithm(k=2), engine_mode="array", **config)
        obj = _run(positions, KKNPS3Algorithm(k=2), engine_mode="object", **config)
        assert_runs_identical(array, obj)


class TestGridDenseEquivalence3D:
    @pytest.mark.parametrize("seed", range(4))
    def test_grid_equals_dense_bit_identical(self, seed):
        configuration = random_connected_configuration3(30, seed=seed)
        base = dict(
            visibility_range=configuration.visibility_range,
            max_rounds=50,
            convergence_epsilon=0.01,
            activation_probability=0.7,
            xi=0.5,
            seed=seed,
        )
        grid = _run(configuration.positions, KKNPS3Algorithm(k=1),
                    spatial_index=True, **base)
        dense = _run(configuration.positions, KKNPS3Algorithm(k=1),
                     spatial_index=False, **base)
        assert_runs_identical(grid, dense)

    def test_grid_object_and_dense_all_agree(self):
        configuration = random_connected_configuration3(25, seed=17)
        base = dict(
            visibility_range=configuration.visibility_range,
            max_rounds=40,
            convergence_epsilon=0.02,
            activation_probability=0.6,
            xi=0.5,
            seed=17,
        )
        grid = _run(configuration.positions, KKNPS3Algorithm(k=2),
                    engine_mode="array", spatial_index=True, **base)
        obj = _run(configuration.positions, KKNPS3Algorithm(k=2),
                   engine_mode="object", **base)
        assert_runs_identical(grid, obj)


class TestEngine3Config:
    def test_engine_mode_validated(self):
        with pytest.raises(ValueError):
            Simulation3Config(engine_mode="vectorised")

    def test_result_counts_activations(self):
        configuration = line_configuration3(4, spacing=0.7)
        result = _run(
            configuration.positions,
            KKNPS3Algorithm(k=1),
            visibility_range=configuration.visibility_range,
            max_rounds=5,
            convergence_epsilon=1e-12,
            activation_probability=1.0,
            xi=1.0,
            seed=0,
        )
        # Full activation: every robot activates every round.
        assert result.activations_executed == 4 * result.rounds_executed

    def test_default_mode_is_array(self):
        assert Simulation3Config().engine_mode == "array"
