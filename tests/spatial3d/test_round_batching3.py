"""Pins: the 3D kernel's batched round fast path matches the per-activation path.

The continuous-time 3D kernel (``Kernel3``) decides per robot — rotation
draw, perception draw, motion draw, in robot order — so the round fast
path replays the same sequential decides against one committed array and
one sharded grid per round.  These pins compare ``round_batching`` on
vs off under round-structured schedulers across error models, crashes
and grid/dense spatial indexing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.errors import MotionModel, PerceptionModel
from repro.schedulers import FSyncScheduler, SSyncScheduler
from repro.spatial3d import (
    AsyncSimulation3Config,
    KKNPS3Algorithm,
    positions_as_array3,
    random_connected_configuration3,
    run_simulation3_async,
)


def _pair(scheduler_factory, n=30, seed=2, **config_kw):
    configuration = random_connected_configuration3(n, seed=seed)
    results = []
    for round_batching in (None, False):
        config_kw["round_batching"] = round_batching
        config_kw.setdefault("seed", seed)
        config_kw.setdefault("max_activations", 120)
        config_kw.setdefault("stop_at_convergence", False)
        results.append(
            run_simulation3_async(
                configuration.positions,
                KKNPS3Algorithm(k=1),
                scheduler_factory(),
                AsyncSimulation3Config(**config_kw),
            )
        )
    return results


def _assert_identical(fast, reference):
    assert np.array_equal(
        positions_as_array3(fast.final_configuration.positions),
        positions_as_array3(reference.final_configuration.positions),
    )
    assert fast.metrics.samples == reference.metrics.samples
    assert fast.activations_processed == reference.activations_processed
    assert fast.convergence_time == reference.convergence_time
    assert fast.final_time == reference.final_time
    assert fast.cohesion_maintained == reference.cohesion_maintained


class TestRoundBatching3Pins:
    @pytest.mark.parametrize("scheduler", [FSyncScheduler, SSyncScheduler])
    @pytest.mark.parametrize("spatial", [True, False])
    def test_exact_models(self, scheduler, spatial):
        fast, reference = _pair(scheduler, spatial_index=spatial)
        _assert_identical(fast, reference)

    @pytest.mark.parametrize("scheduler", [FSyncScheduler, SSyncScheduler])
    def test_error_models(self, scheduler):
        fast, reference = _pair(
            scheduler,
            perception=PerceptionModel(distance_error=0.05),
            motion=MotionModel(xi=0.5),
        )
        _assert_identical(fast, reference)

    def test_no_rotation_frames(self):
        fast, reference = _pair(SSyncScheduler, rotate_frames=False)
        _assert_identical(fast, reference)

    def test_crashes_and_record_every(self):
        fast, reference = _pair(
            SSyncScheduler, crashed_robots=(1, 4), record_every=7
        )
        _assert_identical(fast, reference)
