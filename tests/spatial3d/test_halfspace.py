"""Tests for the fast open-half-space decision against the LP oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.spatial3d import Vector3, fits_in_open_halfspace, fits_in_open_halfspace_array


class TestKnownCases:
    def test_empty_is_false(self):
        assert not fits_in_open_halfspace_array(np.empty((0, 3)))

    def test_single_direction_fits(self):
        assert fits_in_open_halfspace_array(np.array([[0.0, 0.0, 1.0]]))

    def test_antipodal_pair_does_not_fit(self):
        directions = np.array([[1.0, 0.0, 0.0], [-1.0, 0.0, 0.0]])
        assert not fits_in_open_halfspace_array(directions)

    def test_orthant_fits(self):
        directions = np.array(
            [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [0.6, 0.5, 0.4]]
        )
        assert fits_in_open_halfspace_array(directions)

    def test_tetrahedron_surrounding_origin_does_not_fit(self):
        directions = np.array(
            [
                [1.0, 1.0, 1.0],
                [1.0, -1.0, -1.0],
                [-1.0, 1.0, -1.0],
                [-1.0, -1.0, 1.0],
            ]
        )
        assert not fits_in_open_halfspace_array(directions)

    def test_near_zero_rows_ignored(self):
        directions = np.array([[1e-15, 0.0, 0.0], [0.0, 0.0, 1.0]])
        assert fits_in_open_halfspace_array(directions)
        assert not fits_in_open_halfspace_array(np.array([[1e-15, 0.0, 0.0]]))


class TestAgainstLinprogOracle:
    """The fast test agrees with the retained LP formulation away from
    the decision boundary (both are margin-thresholded, so ties exactly
    on the boundary may differ — the engine treats any False as "stay
    put", which is always safe)."""

    @pytest.mark.parametrize("seed", range(20))
    def test_random_direction_sets_agree(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 9))
        directions = rng.normal(size=(m, 3))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        fast = fits_in_open_halfspace_array(directions)
        oracle = fits_in_open_halfspace([Vector3.of(d) for d in directions])
        assert fast == oracle

    @pytest.mark.parametrize("seed", range(10))
    def test_clearly_separable_sets_accepted(self, seed):
        # Directions drawn inside a 60-degree cone around a random axis:
        # always strictly inside an open half-space.
        rng = np.random.default_rng(100 + seed)
        axis = rng.normal(size=3)
        axis /= np.linalg.norm(axis)
        directions = axis + 0.5 * rng.normal(size=(6, 3))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        keep = directions @ axis > 0.6
        if not keep.any():
            pytest.skip("cone sample degenerate for this seed")
        assert fits_in_open_halfspace_array(directions[keep])

    @pytest.mark.parametrize("seed", range(10))
    def test_surrounding_sets_rejected(self, seed):
        # A set containing near-antipodal pairs of every member cannot fit.
        rng = np.random.default_rng(200 + seed)
        half = rng.normal(size=(4, 3))
        half /= np.linalg.norm(half, axis=1, keepdims=True)
        directions = np.vstack([half, -half])
        assert not fits_in_open_halfspace_array(directions)


class TestSegments:
    """The batched per-segment decider equals the per-call decider exactly."""

    @pytest.mark.parametrize("seed", range(15))
    def test_segment_verdicts_match_per_call(self, seed):
        from repro.spatial3d.halfspace import fits_in_open_halfspace_segments

        rng = np.random.default_rng(300 + seed)
        segments = []
        for _ in range(int(rng.integers(1, 7))):
            m = int(rng.integers(0, 8))
            rows = rng.normal(size=(m, 3))
            # Mix in a few degenerate (near-zero) rows the decider must skip.
            if m and rng.random() < 0.3:
                rows[int(rng.integers(0, m))] *= 1e-15
            segments.append(rows)
        flat = (
            np.concatenate(segments)
            if any(len(s) for s in segments)
            else np.empty((0, 3))
        )
        counts = np.array([len(s) for s in segments])
        ends = np.cumsum(counts)
        starts = ends - counts
        verdicts = fits_in_open_halfspace_segments(flat, starts, ends)
        for a, rows in enumerate(segments):
            assert verdicts[a] == fits_in_open_halfspace_array(rows)

    def test_empty_flat_input(self):
        from repro.spatial3d.halfspace import fits_in_open_halfspace_segments

        verdicts = fits_in_open_halfspace_segments(
            np.empty((0, 3)), np.array([0, 0]), np.array([0, 0])
        )
        assert verdicts.shape == (2,)
        assert not verdicts.any()
