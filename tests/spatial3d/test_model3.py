"""Tests for 3D configurations, visibility and snapshots."""

import numpy as np
import pytest

from repro.spatial3d import (
    Configuration3,
    Snapshot3,
    Vector3,
    build_snapshot3,
    edges_preserved3,
    is_connected3,
    visibility_edges3,
)


LINE3 = [Vector3(0, 0, 0), Vector3(0.8, 0, 0), Vector3(1.6, 0, 0)]


class TestVisibility3:
    def test_edges_and_connectivity(self):
        assert visibility_edges3(LINE3, 1.0) == {(0, 1), (1, 2)}
        assert is_connected3(LINE3, 1.0)
        assert not is_connected3(LINE3, 0.5)

    def test_edges_preserved(self):
        edges = visibility_edges3(LINE3, 1.0)
        assert edges_preserved3(edges, LINE3, 1.0)
        moved = [LINE3[0], LINE3[1], Vector3(5, 0, 0)]
        assert not edges_preserved3(edges, moved, 1.0)


class TestConfiguration3:
    def test_basics(self):
        config = Configuration3.of(LINE3, 1.0)
        assert len(config) == 3
        assert config[1] == Vector3(0.8, 0, 0)
        assert config.diameter() == pytest.approx(1.6)
        assert config.centroid().is_close(Vector3(0.8, 0, 0))
        assert config.is_connected()
        assert not config.within_epsilon(0.1)

    def test_positive_range_required(self):
        with pytest.raises(ValueError):
            Configuration3.of(LINE3, 0.0)

    def test_preserves_edges_of(self):
        config = Configuration3.of(LINE3, 1.0)
        contracted = Configuration3.of([p * 0.5 for p in LINE3], 1.0)
        assert contracted.preserves_edges_of(config)


class TestSnapshot3:
    def test_queries(self):
        snap = Snapshot3(neighbours=(Vector3(1, 0, 0), Vector3(0, 0.3, 0)))
        assert snap.has_neighbours()
        assert snap.farthest_distance() == pytest.approx(1.0)
        distant = snap.distant_neighbours()
        assert Vector3(1, 0, 0) in distant
        assert Vector3(0, 0.3, 0) not in distant

    def test_build_snapshot_filters_by_range(self):
        snap = build_snapshot3(Vector3.zero(), [(0.5, 0, 0), (3, 0, 0)], 1.0)
        assert snap.has_neighbours()
        assert len(snap.neighbours) == 1

    def test_build_snapshot_random_frame_preserves_distances(self):
        rng = np.random.default_rng(0)
        snap = build_snapshot3(
            Vector3.zero(), [(0.5, 0, 0), (0, 0.7, 0)], 1.0, rng=rng, rotate_frame=True
        )
        norms = sorted(p.norm() for p in snap.neighbours)
        assert norms[0] == pytest.approx(0.5)
        assert norms[1] == pytest.approx(0.7)
