"""Tests for 3D vectors and the half-space predicate."""

import math

import pytest

from repro.spatial3d import Vector3, centroid3, fits_in_open_halfspace, max_pairwise_distance3


class TestVector3:
    def test_construction_and_coercion(self):
        assert Vector3.of((1, 2, 3)) == Vector3(1.0, 2.0, 3.0)
        v = Vector3(1, 2, 3)
        assert Vector3.of(v) is v
        assert list(v) == [1.0, 2.0, 3.0]
        assert len(v) == 3

    def test_spherical(self):
        v = Vector3.spherical(2.0, 0.0, math.pi / 2)
        assert v.x == pytest.approx(2.0)
        assert v.y == pytest.approx(0.0, abs=1e-12)
        assert v.z == pytest.approx(0.0, abs=1e-12)
        top = Vector3.spherical(1.0, 0.3, 0.0)
        assert top.z == pytest.approx(1.0)

    def test_algebra(self):
        a, b = Vector3(1, 2, 3), Vector3(4, 5, 6)
        assert a + b == Vector3(5, 7, 9)
        assert b - a == Vector3(3, 3, 3)
        assert 2 * a == Vector3(2, 4, 6)
        assert a / 2 == Vector3(0.5, 1.0, 1.5)
        assert -a == Vector3(-1, -2, -3)

    def test_dot_cross_norm(self):
        assert Vector3(1, 0, 0).dot(Vector3(0, 1, 0)) == 0.0
        assert Vector3(1, 0, 0).cross(Vector3(0, 1, 0)) == Vector3(0, 0, 1)
        assert Vector3(1, 2, 2).norm() == pytest.approx(3.0)
        assert Vector3(1, 2, 2).norm_squared() == pytest.approx(9.0)

    def test_unit_and_toward(self):
        assert Vector3(0, 0, 5).unit() == Vector3(0, 0, 1)
        with pytest.raises(ValueError):
            Vector3.zero().unit()
        assert Vector3.zero().toward(Vector3(0, 10, 0), 3.0) == Vector3(0, 3, 0)
        assert Vector3(1, 1, 1).toward(Vector3(1, 1, 1), 2.0) == Vector3(1, 1, 1)

    def test_lerp_and_midpoint(self):
        assert Vector3.zero().lerp(Vector3(2, 4, 6), 0.5) == Vector3(1, 2, 3)
        assert Vector3(0, 0, 0).midpoint(Vector3(2, 0, 0)) == Vector3(1, 0, 0)

    def test_collections(self):
        pts = [Vector3(0, 0, 0), Vector3(2, 0, 0), Vector3(1, 3, 0)]
        assert centroid3(pts) == Vector3(1, 1, 0)
        assert max_pairwise_distance3(pts) == pytest.approx(math.sqrt(10))
        with pytest.raises(ValueError):
            centroid3([])


class TestHalfspacePredicate:
    def test_one_sided_directions_fit(self):
        directions = [Vector3(1, 0, 0), Vector3(1, 1, 0), Vector3(1, 0, 1)]
        assert fits_in_open_halfspace(directions)

    def test_opposite_directions_do_not_fit(self):
        assert not fits_in_open_halfspace([Vector3(1, 0, 0), Vector3(-1, 0, 0)])

    def test_tetrahedral_directions_do_not_fit(self):
        directions = [
            Vector3(1, 1, 1), Vector3(1, -1, -1), Vector3(-1, 1, -1), Vector3(-1, -1, 1)
        ]
        assert not fits_in_open_halfspace(directions)

    def test_empty_does_not_fit(self):
        assert not fits_in_open_halfspace([])

    def test_single_direction_fits(self):
        assert fits_in_open_halfspace([Vector3(0, 0, 1)])
