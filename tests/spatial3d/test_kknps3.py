"""Tests for the 3D instantiation of the paper's algorithm and its simulator."""

import math

import numpy as np
import pytest

from repro.spatial3d import (
    KKNPS3Algorithm,
    Simulation3Config,
    Snapshot3,
    Vector3,
    lattice_configuration3,
    line_configuration3,
    random_connected_configuration3,
    run_simulation3,
)


def snap(*neighbours):
    return Snapshot3(neighbours=tuple(Vector3.of(p) for p in neighbours))


class TestKKNPS3Rule:
    def test_validation(self):
        with pytest.raises(ValueError):
            KKNPS3Algorithm(k=0)
        with pytest.raises(ValueError):
            KKNPS3Algorithm(close_fraction=1.5)
        with pytest.raises(ValueError):
            KKNPS3Algorithm(radius_divisor=2.0)

    def test_no_neighbours_stays(self):
        assert KKNPS3Algorithm().compute(snap()) == Vector3.zero()

    def test_single_neighbour_moves_toward_it(self):
        destination = KKNPS3Algorithm(k=1).compute(snap((0.8, 0, 0)))
        assert destination.x == pytest.approx(0.1)
        assert destination.y == pytest.approx(0.0, abs=1e-12)
        assert destination.z == pytest.approx(0.0, abs=1e-12)

    def test_move_length_bounded_by_scaled_radius(self):
        rng = np.random.default_rng(0)
        algorithm = KKNPS3Algorithm(k=3)
        for _ in range(100):
            neighbours = [
                Vector3.spherical(
                    float(rng.uniform(0.1, 1.0)),
                    float(rng.uniform(0, 2 * math.pi)),
                    float(math.acos(rng.uniform(-1, 1))),
                )
                for _ in range(rng.integers(1, 6))
            ]
            snapshot = Snapshot3(neighbours=tuple(neighbours))
            destination = algorithm.compute(snapshot)
            assert destination.norm() <= snapshot.farthest_distance() / 24.0 + 1e-9

    def test_destination_respects_every_safe_ball(self):
        rng = np.random.default_rng(1)
        algorithm = KKNPS3Algorithm(k=2)
        for _ in range(100):
            neighbours = [
                Vector3.spherical(
                    float(rng.uniform(0.2, 1.0)),
                    float(rng.uniform(0, 2 * math.pi)),
                    float(math.acos(rng.uniform(-1, 1))),
                )
                for _ in range(rng.integers(1, 6))
            ]
            assert algorithm.destination_respects_safe_balls(Snapshot3(neighbours=tuple(neighbours)))

    def test_static_neighbours_remain_visible(self):
        rng = np.random.default_rng(2)
        algorithm = KKNPS3Algorithm(k=1)
        for _ in range(100):
            neighbours = [
                Vector3.spherical(
                    float(rng.uniform(0.2, 1.0)),
                    float(rng.uniform(0, 2 * math.pi)),
                    float(math.acos(rng.uniform(-1, 1))),
                )
                for _ in range(rng.integers(1, 5))
            ]
            snapshot = Snapshot3(neighbours=tuple(neighbours))
            destination = algorithm.compute(snapshot)
            v_y = snapshot.farthest_distance()
            for p in neighbours:
                assert destination.distance_to(p) <= v_y + 1e-9

    def test_surrounded_robot_stays(self):
        neighbours = [
            Vector3(1, 1, 1), Vector3(1, -1, -1), Vector3(-1, 1, -1), Vector3(-1, -1, 1)
        ]
        assert KKNPS3Algorithm(k=1).compute(Snapshot3(neighbours=tuple(neighbours))) == Vector3.zero()

    def test_scaling_with_k(self):
        base = KKNPS3Algorithm(k=1).compute(snap((1, 0, 0)))
        scaled = KKNPS3Algorithm(k=4).compute(snap((1, 0, 0)))
        assert scaled.norm() == pytest.approx(base.norm() / 4.0)


class TestWorkloads3:
    def test_line_and_lattice(self):
        assert line_configuration3(5).is_connected()
        assert lattice_configuration3(2).is_connected()
        assert len(lattice_configuration3(2)) == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            line_configuration3(0)
        with pytest.raises(ValueError):
            lattice_configuration3(2, spacing=2.0)
        with pytest.raises(ValueError):
            random_connected_configuration3(0)

    def test_random_configuration_connected_and_deterministic(self):
        a = random_connected_configuration3(12, seed=3)
        b = random_connected_configuration3(12, seed=3)
        assert a.is_connected()
        assert all(p.is_close(q) for p, q in zip(a.positions, b.positions))


class TestSimulator3:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            Simulation3Config(visibility_range=0.0)
        with pytest.raises(ValueError):
            Simulation3Config(activation_probability=0.0)
        with pytest.raises(ValueError):
            Simulation3Config(xi=0.0)
        with pytest.raises(ValueError):
            Simulation3Config(max_rounds=0)

    def test_fully_synchronous_convergence(self):
        configuration = lattice_configuration3(2, spacing=0.6)
        result = run_simulation3(
            configuration.positions,
            KKNPS3Algorithm(k=1),
            Simulation3Config(max_rounds=2000, convergence_epsilon=0.05, seed=0),
        )
        assert result.converged
        assert result.cohesion_maintained
        assert result.final_diameter <= 0.05 + 1e-9

    def test_semi_synchronous_nonrigid_convergence(self):
        configuration = random_connected_configuration3(10, seed=7)
        result = run_simulation3(
            configuration.positions,
            KKNPS3Algorithm(k=2),
            Simulation3Config(
                max_rounds=4000, convergence_epsilon=0.05,
                activation_probability=0.5, xi=0.4, seed=7,
            ),
        )
        assert result.converged
        assert result.cohesion_maintained

    def test_diameter_history_is_monotone(self):
        configuration = line_configuration3(5, spacing=0.7)
        result = run_simulation3(
            configuration.positions,
            KKNPS3Algorithm(k=1),
            Simulation3Config(max_rounds=500, convergence_epsilon=0.05, seed=1),
        )
        history = result.diameter_history
        assert all(later <= earlier + 1e-9 for earlier, later in zip(history, history[1:]))


class TestComputeArrayRounds:
    """The whole-round batch core equals per-activation compute_array bitwise."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_rounds_bitwise_equal(self, seed):
        rng = np.random.default_rng(400 + seed)
        algorithm = KKNPS3Algorithm(k=int(rng.integers(1, 4)))
        segments = [
            rng.normal(size=(int(rng.integers(0, 7)), 3)) * 0.6
            for _ in range(int(rng.integers(1, 8)))
        ]
        flat = (
            np.concatenate(segments)
            if any(len(s) for s in segments)
            else np.empty((0, 3))
        )
        counts = np.array([len(s) for s in segments])
        ends = np.cumsum(counts)
        starts = ends - counts
        batched = algorithm.compute_array_rounds(flat, starts, ends)
        assert batched.shape == (len(segments), 3)
        for a, rows in enumerate(segments):
            assert (batched[a] == algorithm.compute_array(rows)).all()

    def test_out_buffer_is_reused(self):
        algorithm = KKNPS3Algorithm(k=1)
        flat = np.array([[0.9, 0.0, 0.0], [0.0, 0.8, 0.0]])
        out = np.zeros((2, 3))
        returned = algorithm.compute_array_rounds(
            flat, np.array([0, 1]), np.array([1, 2]), out=out
        )
        assert returned is out
        assert (out[0] == algorithm.compute_array(flat[:1])).all()
        assert (out[1] == algorithm.compute_array(flat[1:])).all()

    def test_empty_and_degenerate_segments_stay_put(self):
        algorithm = KKNPS3Algorithm(k=2)
        flat = np.array([[1e-15, 0.0, 0.0]])
        batched = algorithm.compute_array_rounds(
            flat, np.array([0, 1]), np.array([1, 1])
        )
        assert (batched == 0.0).all()
