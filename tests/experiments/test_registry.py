"""Tests for the experiment registry and CLI entry point."""

import pytest

from repro.experiments import REGISTRY, experiment_ids, get
from repro.experiments.__main__ import main as experiments_main


class TestRegistry:
    def test_all_design_doc_experiments_registered(self):
        expected = {
            "F3", "F4", "L12", "L5", "T1", "C1", "L68", "E1", "I1", "S2", "U1", "D1", "X1",
        }
        assert expected == set(experiment_ids())

    def test_entries_are_complete(self):
        for entry in REGISTRY.values():
            assert entry.paper_artifact
            assert entry.description
            assert callable(entry.run)
            assert entry.bench.startswith("benchmarks/")

    def test_get_known_and_unknown(self):
        assert get("F4").experiment_id == "F4"
        with pytest.raises(KeyError):
            get("does-not-exist")

    def test_bench_files_exist(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        for entry in REGISTRY.values():
            assert (root / entry.bench).exists(), entry.bench


class TestCli:
    def test_listing_runs(self, capsys):
        assert experiments_main([]) == 0
        output = capsys.readouterr().out
        assert "F4" in output and "I1" in output

    def test_list_flag(self, capsys):
        assert experiments_main(["--list"]) == 0
        assert "Registered experiments" in capsys.readouterr().out

    def test_running_a_fast_experiment(self, capsys):
        assert experiments_main(["F3"]) == 0
        output = capsys.readouterr().out
        assert "Figure 3" in output
        assert "Ando" in output
