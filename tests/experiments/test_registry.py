"""Tests for the experiment registry and CLI entry point."""

import pytest

from repro.experiments import REGISTRY, experiment_ids, get
from repro.experiments.__main__ import main as experiments_main


class TestRegistry:
    def test_all_design_doc_experiments_registered(self):
        expected = {
            "F3", "F4", "L12", "L5", "T1", "C1", "L68", "E1", "I1", "S2", "U1", "D1", "X1",
            "X2",
        }
        assert expected == set(experiment_ids())

    def test_entries_are_complete(self):
        for entry in REGISTRY.values():
            assert entry.paper_artifact
            assert entry.description
            assert callable(entry.run)
            assert entry.bench.startswith("benchmarks/")

    def test_get_known_and_unknown(self):
        assert get("F4").experiment_id == "F4"
        with pytest.raises(KeyError):
            get("does-not-exist")

    def test_bench_files_exist(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        for entry in REGISTRY.values():
            assert (root / entry.bench).exists(), entry.bench

    def test_ids_are_unique_and_match_keys(self):
        ids = experiment_ids()
        assert len(set(ids)) == len(ids)
        for key, entry in REGISTRY.items():
            assert key == entry.experiment_id

    def test_bench_paths_are_distinct(self):
        benches = [entry.bench for entry in REGISTRY.values()]
        assert len(set(benches)) == len(benches)


#: Per-experiment tiny parameters: every registered ``run`` callable must
#: complete with these (an order of magnitude below even the smoke tests in
#: test_experiment_runs.py, which check the qualitative claims).
SMOKE_KWARGS = {
    "F3": dict(area_samples=400, k_values=(1, 2)),
    "F4": dict(),
    "L12": dict(trials=15, seed=1),
    "L5": dict(k_values=(1,), steps=5, trials=8, seed=1),
    "T1": dict(n_robots=5, runs_per_cell=1, max_activations=600, epsilon=0.15, k=2, seed=1),
    "C1": dict(n_values=(4,), k_values=(1,), epsilon=0.15, max_activations=1500,
               seed=1, include_ablations=False),
    "L68": dict(configurations=2, n_robots=5, nesting_runs=1, nesting_activations=40, seed=1),
    "E1": dict(n_robots=5, max_activations=1200, epsilon=0.15,
               figure18_coefficients=(0.2,), seed=1),
    "I1": dict(psi=0.35, delta=0.13, skew=0.1),
    "S2": dict(n_values=(4,), max_rounds=50, seed=1),
    "U1": dict(n_values=(4,), max_activations=4000, seed=1),
    "D1": dict(n_components=2, robots_per_component=3, max_activations=1000, seed=1),
    "X1": dict(k_values=(1,), random_sizes=(5,), max_rounds=300, seed=1),
    "X2": dict(j_values=(1,), epochs=1, psi=0.35, seed=1),
}


class TestRegistrySmokeRuns:
    def test_every_experiment_has_smoke_kwargs(self):
        assert set(SMOKE_KWARGS) == set(experiment_ids())

    @pytest.mark.parametrize("experiment_id", sorted(SMOKE_KWARGS))
    def test_run_callable_smoke_runs(self, experiment_id):
        entry = get(experiment_id)
        result = entry.run(**SMOKE_KWARGS[experiment_id])
        assert result is not None


class TestCli:
    def test_listing_runs(self, capsys):
        assert experiments_main([]) == 0
        output = capsys.readouterr().out
        assert "F4" in output and "I1" in output

    def test_list_flag(self, capsys):
        assert experiments_main(["--list"]) == 0
        assert "Registered experiments" in capsys.readouterr().out

    def test_running_a_fast_experiment(self, capsys):
        assert experiments_main(["F3"]) == 0
        output = capsys.readouterr().out
        assert "Figure 3" in output
        assert "Ando" in output
