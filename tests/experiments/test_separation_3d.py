"""Smoke tests for experiment X2 (3D separation under scripted schedules)."""

from __future__ import annotations

import pytest

from repro.experiments import REGISTRY, separation_3d
from repro.schedulers.scripted import validate_k_async


class TestOverlapSchedule:
    @pytest.mark.parametrize("j", [1, 2, 4])
    def test_certified_exactly_j_async(self, j):
        script = separation_3d.overlap_schedule(5, j, epochs=2)
        assert validate_k_async(script, j)
        if j > 1:
            assert not validate_k_async(script, j - 1)

    def test_counts_per_epoch(self):
        n, j, epochs = 6, 3, 2
        script = separation_3d.overlap_schedule(n, j, epochs=epochs)
        assert len(script) == epochs * (1 + (n - 1) * j)

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            separation_3d.overlap_schedule(1, 2)
        with pytest.raises(ValueError):
            separation_3d.overlap_schedule(4, 0)


class TestSeparation3DSmoke:
    def test_registered_as_x2(self):
        entry = REGISTRY["X2"]
        assert entry.run is separation_3d.run
        assert entry.bench == "benchmarks/bench_separation_3d.py"

    def test_small_run(self):
        result = separation_3d.run(j_values=(1, 2), epochs=2)
        # line3 and lattice3, each with j=1 matched, j=2 matched, j=2 over-bound.
        assert len(result.scripted_rows) == 6
        assert all(row.certified_j_async for row in result.scripted_rows)
        assert result.matched_rows_cohesive

        spiral = result.spiral_row
        assert spiral is not None
        assert spiral.construction_is_legal
        assert spiral.move_is_planar
        assert spiral.zeta > spiral.required_zeta > 0.0
        assert result.spiral_breaks_visibility

    def test_table_renders(self):
        result = separation_3d.run(j_values=(1,), epochs=1)
        rendered = result.to_table().render()
        assert "scripted" in rendered and "spiral" in rendered
