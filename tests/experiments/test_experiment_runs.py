"""Small-parameter smoke-and-claim tests for each experiment module.

Each test runs the experiment with parameters an order of magnitude
smaller than the benches use, and checks the qualitative claim that the
corresponding figure/section of the paper makes.  The benches repeat the
same checks at full size.
"""

import pytest

from repro.experiments import (
    baselines_unlimited,
    congregation_lemmas,
    convergence,
    error_tolerance,
    fig3_safe_regions,
    fig4_ando_failure,
    impossibility,
    lemma5_chain,
    lemma_regions,
    separation_matrix,
    unlimited_async,
)


class TestFigure3:
    def test_kknps_region_is_smallest_and_nested(self):
        result = fig3_safe_regions.run(area_samples=4000)
        for row in result.rows:
            assert row.kknps_area < row.katreniak_area < row.ando_area
            assert row.kknps_inside_ando
        assert result.to_table().render()

    def test_k_sweep_scales_inversely(self):
        result = fig3_safe_regions.run(area_samples=1000, k_values=(1, 2, 8))
        radii = dict((k, r) for k, r, _ in result.k_sweep)
        assert radii[2] == pytest.approx(radii[1] / 2)
        assert radii[8] == pytest.approx(radii[1] / 8)


class TestFigure4:
    def test_claims(self):
        result = fig4_ando_failure.run()
        assert result.ando_breaks_both_timelines
        assert result.kknps_preserves_both_timelines


class TestLemmaRegions:
    def test_containment_and_control(self):
        result = lemma_regions.run(trials=60, seed=1)
        assert result.lemmas_hold
        assert result.inflated_control.violations > 0


class TestLemma5:
    def test_no_separation_and_margins(self):
        result = lemma5_chain.run(k_values=(1,), steps=15, trials=30, seed=1)
        assert result.theorem4_holds
        assert result.lemma5_margin_satisfied


class TestSeparationMatrix:
    def test_small_matrix(self):
        result = separation_matrix.run(
            n_robots=6, runs_per_cell=1, max_activations=2500, epsilon=0.06, k=2, seed=1
        )
        kknps = result.cell("kknps(k matched)", "ssync")
        assert kknps is not None and kknps.always_cohesive
        ando_adversary = result.cell("ando", "fig4 1-async adversary")
        assert ando_adversary is not None and ando_adversary.cohesion_preserved == 0
        kknps_adversary = result.cell("kknps(k matched)", "fig4 1-async adversary")
        assert kknps_adversary is not None and kknps_adversary.cohesion_preserved == 1


class TestConvergence:
    def test_small_sweep(self):
        result = convergence.run(
            n_values=(5,), k_values=(1, 2), epsilon=0.06, max_activations=6000,
            seed=1, include_ablations=False,
        )
        assert result.all_cohesive
        assert all(row.converged for row in result.rows)


class TestCongregationLemmas:
    def test_all_bounds_hold(self):
        result = congregation_lemmas.run(
            configurations=5, n_robots=8, nesting_runs=1, nesting_activations=120, seed=1
        )
        assert result.all_hold


class TestErrorTolerance:
    def test_figure18_threshold(self):
        result = error_tolerance.run(
            n_robots=6, max_activations=4000, figure18_coefficients=(0.2, 3.0), seed=1
        )
        assert result.tolerated_models_all_cohesive
        assert result.linear_error_separates_threshold_pair
        assert not result.figure18[0].separated
        assert result.figure18[-1].separated


class TestImpossibility:
    def test_construction(self):
        result = impossibility.run(psi=0.35, delta=0.13, skew=0.1)
        assert result.report.construction_is_legal
        assert result.report.any_representative_breaks_visibility
        assert result.impossibility_demonstrated


class TestBaselines:
    def test_gcm_not_slower(self):
        result = baselines_unlimited.run(n_values=(4, 8), max_rounds=150, seed=1)
        assert result.gcm_never_slower_than_cog


class TestUnlimitedAsync:
    def test_full_async_with_large_range(self):
        result = unlimited_async.run(n_values=(5,), max_activations=12000, seed=1)
        assert result.all_converged_cohesively
