"""Tests for the Section-6.3 extension experiments (3D and disconnected starts)."""

import pytest

from repro.experiments import disconnected, extension_3d, experiment_ids, get


class TestRegistryEntries:
    def test_extensions_are_registered(self):
        assert "X1" in experiment_ids()
        assert "D1" in experiment_ids()
        assert get("X1").paper_artifact == "Section 6.3.2"
        assert get("D1").paper_artifact == "Section 6.3.1"


class TestExtension3D:
    def test_small_3d_grid_converges_cohesively(self):
        result = extension_3d.run(
            random_sizes=(6,), k_values=(1,), max_rounds=1500, seed=1
        )
        assert result.rows
        assert result.all_converged_cohesively
        assert result.to_table().render()


class TestDisconnected:
    def test_components_converge_separately(self):
        result = disconnected.run(
            n_components=2, robots_per_component=5, max_activations=2500, seed=1
        )
        assert result.every_component_converged
        assert result.cohesion_maintained
        assert result.components_remain_separated
        assert len(result.components) == 2

    def test_component_gap_validation(self):
        with pytest.raises(ValueError):
            disconnected.run(component_gap=1.0)
