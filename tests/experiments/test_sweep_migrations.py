"""Numerics-unchanged regression for the E1/U1 sweep-engine migrations.

E1 (error tolerance) and U1 (unlimited-visibility Async) now express
their grids as sweep ``RunSpec``s over registry names.  These tests
rebuild each measurement the way the pre-migration experiments did —
direct object construction and a direct ``run_simulation`` call — and
require the migrated rows to match **exactly** (same RNG streams, same
floats), plus parallel == serial through the experiments' ``workers``
seam.  X1's migration to the 3D registries is covered by
``tests/sweeps/test_sweep3d.py`` and the experiment smoke tests.
"""

from __future__ import annotations

from repro.algorithms.kknps import KKNPSAlgorithm
from repro.engine.simulator import SimulationConfig, run_simulation
from repro.experiments import error_tolerance, unlimited_async
from repro.geometry.transforms import SymmetricDistortion
from repro.model.errors import MotionModel, PerceptionModel
from repro.schedulers.kasync import AsyncScheduler, KAsyncScheduler
from repro.workloads.generators import (
    random_connected_configuration,
    random_disk_configuration,
)

N_ROBOTS = 5
MAX_ACTIVATIONS = 900
EPSILON = 0.15
K = 4
SEED = 1


def _reference_e1_run(perception, motion, algorithm, seed):
    """One error-model measurement exactly as pre-migration E1 ran it."""
    configuration = random_connected_configuration(N_ROBOTS, seed=seed)
    result = run_simulation(
        configuration.positions,
        algorithm,
        KAsyncScheduler(k=K, progress_fraction=(0.5, 1.0)),
        SimulationConfig(
            max_activations=MAX_ACTIVATIONS,
            convergence_epsilon=EPSILON,
            seed=seed,
            perception=perception,
            motion=motion,
            k_bound=K,
        ),
    )
    return (
        result.cohesion_maintained,
        result.converged,
        result.final_hull_diameter,
    )


class TestE1NumericsUnchanged:
    def test_rows_match_direct_simulation_exactly(self):
        migrated = error_tolerance.run(
            n_robots=N_ROBOTS,
            seed=SEED,
            max_activations=MAX_ACTIVATIONS,
            epsilon=EPSILON,
            k=K,
            figure18_coefficients=(0.2,),
        )
        reference = [
            _reference_e1_run(
                PerceptionModel.exact(), MotionModel.rigid(),
                KKNPSAlgorithm(k=K), SEED,
            ),
            _reference_e1_run(
                PerceptionModel(distance_error=0.05, bias="random"),
                MotionModel(xi=0.5),
                KKNPSAlgorithm(k=K, distance_error_tolerance=0.05), SEED + 1,
            ),
            _reference_e1_run(
                PerceptionModel(distortion=SymmetricDistortion(amplitude=0.1, frequency=2)),
                MotionModel(xi=0.5),
                KKNPSAlgorithm(k=K, skew_tolerance=0.1), SEED + 2,
            ),
            _reference_e1_run(
                PerceptionModel.exact(),
                MotionModel(xi=0.5, deviation="quadratic", coefficient=0.2, bias="random"),
                KKNPSAlgorithm(k=K), SEED + 3,
            ),
            _reference_e1_run(
                PerceptionModel.exact(),
                MotionModel(xi=0.5, deviation="linear", coefficient=0.6, bias="adversarial"),
                KKNPSAlgorithm(k=K), SEED + 4,
            ),
        ]
        assert [
            (row.cohesion, row.converged, row.final_diameter) for row in migrated.runs
        ] == reference

    def test_parallel_equals_serial(self):
        kwargs = dict(
            n_robots=N_ROBOTS, seed=SEED, max_activations=MAX_ACTIVATIONS,
            epsilon=EPSILON, k=K, figure18_coefficients=(0.2,),
        )
        serial = error_tolerance.run(**kwargs)
        parallel = error_tolerance.run(workers=2, **kwargs)
        assert [
            (row.label, row.cohesion, row.converged, row.final_diameter)
            for row in serial.runs
        ] == [
            (row.label, row.cohesion, row.converged, row.final_diameter)
            for row in parallel.runs
        ]


class TestU1NumericsUnchanged:
    N_VALUES = (5, 7)
    MARGIN = 1.25
    BUDGET = 4000

    def _reference_u1_row(self, n):
        """One size exactly as pre-migration U1 ran it."""
        configuration = random_disk_configuration(
            n, disk_radius=1.0, visibility_range=2.0, seed=SEED + n
        )
        initial_diameter = configuration.hull_diameter()
        visibility_range = self.MARGIN * max(initial_diameter, 1e-6)
        sim = run_simulation(
            configuration.positions,
            KKNPSAlgorithm(k=1),
            AsyncScheduler(),
            SimulationConfig(
                visibility_range=visibility_range,
                max_activations=self.BUDGET,
                convergence_epsilon=EPSILON,
                seed=SEED + n,
            ),
        )
        all_visible = all(
            sample.initial_edges_preserved for sample in sim.metrics.samples
        )
        return (
            n,
            initial_diameter,
            visibility_range,
            sim.converged,
            sim.cohesion_maintained,
            all_visible,
            sim.final_hull_diameter,
        )

    def test_rows_match_direct_simulation_exactly(self):
        migrated = unlimited_async.run(
            n_values=self.N_VALUES,
            seed=SEED,
            max_activations=self.BUDGET,
            epsilon=EPSILON,
            diameter_margin=self.MARGIN,
        )
        reference = [self._reference_u1_row(n) for n in self.N_VALUES]
        assert [
            (
                row.n_robots,
                row.initial_diameter,
                row.visibility_range,
                row.converged,
                row.cohesion,
                row.all_pairs_always_visible,
                row.final_diameter,
            )
            for row in migrated.rows
        ] == reference

    def test_parallel_equals_serial(self):
        kwargs = dict(
            n_values=self.N_VALUES, seed=SEED, max_activations=self.BUDGET,
            epsilon=EPSILON, diameter_margin=self.MARGIN,
        )
        serial = unlimited_async.run(**kwargs)
        parallel = unlimited_async.run(workers=2, **kwargs)
        assert serial.rows == parallel.rows
