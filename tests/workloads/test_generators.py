"""Tests for the workload generators."""

import math

import numpy as np
import pytest

from repro.geometry import Point
from repro.workloads import (
    annulus_configuration,
    blob_configuration,
    clustered_configuration,
    grid_configuration,
    line_configuration,
    polygon_configuration,
    random_connected_configuration,
    random_disk_configuration,
    ring_configuration,
    two_robot_configuration,
)


class TestDeterministicShapes:
    def test_line(self):
        config = line_configuration(5, spacing=0.8)
        assert len(config) == 5
        assert config.is_connected()
        assert config[4] == Point(3.2, 0.0)

    def test_line_validation(self):
        with pytest.raises(ValueError):
            line_configuration(0)
        with pytest.raises(ValueError):
            line_configuration(3, spacing=1.5)

    def test_grid(self):
        config = grid_configuration(3, 4, spacing=0.7)
        assert len(config) == 12
        assert config.is_connected()

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            grid_configuration(0, 3)
        with pytest.raises(ValueError):
            grid_configuration(2, 2, spacing=2.0)

    def test_ring(self):
        config = ring_configuration(8)
        assert len(config) == 8
        assert config.is_connected()
        # All robots are at the same distance from the centroid.
        centroid = config.centroid()
        radii = [p.distance_to(centroid) for p in config.positions]
        assert max(radii) - min(radii) < 1e-9

    def test_ring_validation(self):
        with pytest.raises(ValueError):
            ring_configuration(2)
        with pytest.raises(ValueError):
            ring_configuration(5, chord_fraction=0.0)

    def test_polygon_unit_sides(self):
        config = polygon_configuration(6, side_length=1.0)
        positions = list(config.positions)
        for a, b in zip(positions, positions[1:] + positions[:1]):
            assert a.distance_to(b) == pytest.approx(1.0)

    def test_two_robot(self):
        config = two_robot_configuration(0.6)
        assert len(config) == 2
        assert config.hull_diameter() == pytest.approx(0.6)


class TestRandomShapes:
    @pytest.mark.parametrize("n", [1, 2, 10, 40])
    def test_random_connected_is_connected(self, n):
        config = random_connected_configuration(n, seed=n)
        assert len(config) == n
        assert config.is_connected()

    def test_random_connected_is_deterministic_per_seed(self):
        a = random_connected_configuration(12, seed=3)
        b = random_connected_configuration(12, seed=3)
        c = random_connected_configuration(12, seed=4)
        assert all(p.is_close(q) for p, q in zip(a.positions, b.positions))
        assert any(not p.is_close(q) for p, q in zip(a.positions, c.positions))

    def test_random_connected_accepts_generator(self):
        rng = np.random.default_rng(5)
        config = random_connected_configuration(8, seed=rng)
        assert config.is_connected()

    def test_random_connected_validation(self):
        with pytest.raises(ValueError):
            random_connected_configuration(0)
        with pytest.raises(ValueError):
            random_connected_configuration(5, attach_radius_fraction=1.5)

    def test_clustered_configuration(self):
        config = clustered_configuration(3, 4, seed=1)
        assert len(config) == 3 * 4 + 2  # clusters plus bridges
        assert config.is_connected()

    def test_clustered_validation(self):
        with pytest.raises(ValueError):
            clustered_configuration(0, 3)
        with pytest.raises(ValueError):
            clustered_configuration(2, 2, cluster_radius_fraction=0.5)

    def test_random_disk_connected(self):
        config = random_disk_configuration(15, disk_radius=2.0, visibility_range=1.5, seed=2)
        assert config.is_connected()
        assert all(p.norm() <= 2.0 + 1e-9 for p in config.positions)

    def test_random_disk_raises_when_infeasible(self):
        with pytest.raises(RuntimeError):
            random_disk_configuration(
                3, disk_radius=100.0, visibility_range=0.1, seed=0, max_attempts=5
            )


class TestBlobConfiguration:
    """Property-style checks: every generated instance is visibility-connected."""

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("n", [3, 7, 12, 25])
    def test_always_connected_with_exact_count(self, n, seed):
        config = blob_configuration(n, seed=seed)
        assert len(config) == n
        assert config.is_connected()

    @pytest.mark.parametrize("seed", range(6))
    def test_scaled_visibility_range(self, seed):
        config = blob_configuration(10, visibility_range=2.5, seed=seed)
        assert config.visibility_range == 2.5
        assert config.is_connected()

    def test_deterministic_per_seed(self):
        a = blob_configuration(9, seed=4)
        b = blob_configuration(9, seed=4)
        c = blob_configuration(9, seed=5)
        assert tuple(a.positions) == tuple(b.positions)
        assert tuple(a.positions) != tuple(c.positions)

    def test_validation(self):
        with pytest.raises(ValueError):
            blob_configuration(0)
        with pytest.raises(ValueError):
            blob_configuration(2, n_blobs=3)
        with pytest.raises(ValueError):
            # Gap plus two radii beyond V could disconnect adjacent blobs.
            blob_configuration(6, blob_radius_fraction=0.3, centre_gap_fraction=0.6)


class TestAnnulusConfiguration:
    """Property-style checks: accepted samples are connected and in the annulus."""

    @pytest.mark.parametrize("seed", range(12))
    def test_always_connected_within_radii(self, seed):
        config = annulus_configuration(10, inner_radius=0.5, outer_radius=1.2, seed=seed)
        assert len(config) == 10
        assert config.is_connected()
        for p in config.positions:
            assert 0.5 - 1e-9 <= p.norm() <= 1.2 + 1e-9

    def test_deterministic_per_seed(self):
        a = annulus_configuration(8, seed=2)
        b = annulus_configuration(8, seed=2)
        assert tuple(a.positions) == tuple(b.positions)

    def test_validation(self):
        with pytest.raises(ValueError):
            annulus_configuration(1)
        with pytest.raises(ValueError):
            annulus_configuration(5, inner_radius=1.2, outer_radius=0.5)

    def test_raises_when_infeasible(self):
        with pytest.raises(RuntimeError):
            annulus_configuration(
                3, inner_radius=40.0, outer_radius=50.0, visibility_range=0.1,
                seed=0, max_attempts=5,
            )
