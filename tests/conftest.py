"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Allow running the tests without installing the package first.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.geometry import Point  # noqa: E402
from repro.model import Snapshot  # noqa: E402


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def triangle_points() -> list:
    """Three non-collinear points used by several geometry tests."""
    return [Point(0.0, 0.0), Point(1.0, 0.0), Point(0.5, 1.0)]


@pytest.fixture
def two_neighbour_snapshot() -> Snapshot:
    """A snapshot with two distant neighbours 90 degrees apart at distance 1."""
    return Snapshot(neighbours=(Point(1.0, 0.0), Point(0.0, 1.0)))


def make_snapshot(*neighbours, visibility_range=None, k_bound=None) -> Snapshot:
    """Convenience constructor used across algorithm tests."""
    return Snapshot(
        neighbours=tuple(Point.of(p) for p in neighbours),
        visibility_range=visibility_range,
        k_bound=k_bound,
    )
