"""Shared configuration for the benchmark harness.

Each bench regenerates one of the paper's figures/claims (see DESIGN.md's
per-experiment index) with parameters small enough to run on a laptop.
Benches assert the *qualitative* claim of the corresponding artifact —
who wins, what breaks, which bound holds — not absolute timings.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running the benches without installing the package first.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
