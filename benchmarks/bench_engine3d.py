"""Bench — 3D round engine wall time, array mode vs the retained object path.

The array-native 3D engine (``repro.spatial3d.engine3``) replaced the
per-robot ``Vector3`` round loop with one contiguous ``(n, 3)`` position
array: batched distance filtering per Look, fused-column rotation of
whole neighbour batches, the vectorized destination rule
(``KKNPS3Algorithm.compute_array``), vectorized per-round diameter and
cohesion reductions, and (for large swarms) 3x3x3-block candidate
queries against the shared uniform hash grid.  The object path — the
pre-array reference loop — is retained as ``engine_mode="object"`` and
property-tested bit-identical, which makes this benchmark an equal-work
comparison: both sides simulate the exact same rounds.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_engine3d.py            # full grid
    PYTHONPATH=src python benchmarks/bench_engine3d.py --smoke    # CI smoke

The full grid covers n in {25, 50, 100, 200, 400} on the random
connected 3D workload under the ssync3 discipline (60% activation
subsets, xi = 0.5, random frames).  The convergence threshold is set
unreachably low so every run executes the full round budget.  A separate
**mega-swarm** section extends the size axis to n near {10^3, 10^4,
10^5} (cubic lattices) through the continuous-time kernel
(``run_simulation3_async`` under SSync), where the batched round fast
path lives: at ~10^3 it is timed against the retained per-activation
kernel path (``round_batching`` off), and at the larger sizes its wall
clock is recorded alone.  Results are written to
``BENCH_engine3d.json``; ``--smoke`` shrinks the grid and budget so the
script (and its JSON contract) is exercised on every CI push.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro.schedulers import SSyncScheduler
from repro.spatial3d import (
    AsyncSimulation3Config,
    KKNPS3Algorithm,
    Simulation3Config,
    lattice_configuration3,
    random_connected_configuration3,
    run_simulation3,
    run_simulation3_async,
)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine3d.json"

FULL_SIZES = (25, 50, 100, 200, 400)
SMOKE_SIZES = (8, 16)
FULL_ROUNDS = 30
SMOKE_ROUNDS = 4
#: Timed repetitions per (mode, cell); the minimum is reported, which is
#: the standard way to suppress scheduler/load noise in wall-time benches.
FULL_REPEATS = 3
SMOKE_REPEATS = 1
SEED = 3
K_VALUES = (1, 2)

#: Mega-swarm axis: cubic-lattice sides, n = side^3 (1000, 10648, 97336),
#: run through the continuous-time kernel under SSync so the batched
#: round fast path carries the load.
MEGA_SIDES = (10, 22, 46)
SMOKE_MEGA_SIDES = (7,)
#: Largest mega n that also times the per-activation reference path
#: (``round_batching=False``); beyond it the reference would take minutes
#: per row, so the fast path's wall clock is recorded alone.
MEGA_REFERENCE_MAX = 1_000


def _mega_activations(n: int, smoke: bool) -> int:
    """Activation budget for a mega row (activations, not rounds)."""
    if smoke:
        return 2 * n
    return 5 * n if n <= 11_000 else n


def _config(engine_mode: str, max_rounds: int) -> Simulation3Config:
    return Simulation3Config(
        max_rounds=max_rounds,
        # Unreachable threshold: both modes execute the full budget.
        convergence_epsilon=1e-12,
        activation_probability=0.6,
        xi=0.5,
        seed=SEED,
        rotate_frames=True,
        engine_mode=engine_mode,
    )


def _run_once(positions, k: int, engine_mode: str, max_rounds: int) -> float:
    started = time.perf_counter()
    run_simulation3(positions, KKNPS3Algorithm(k=k), _config(engine_mode, max_rounds))
    return time.perf_counter() - started


def _best_of(repeats: int, positions, k: int, engine_mode: str, max_rounds: int) -> float:
    return min(_run_once(positions, k, engine_mode, max_rounds) for _ in range(repeats))


def run_grid(sizes, max_rounds: int, repeats: int, *, verbose: bool = True) -> dict:
    results = []
    for k in K_VALUES:
        for n in sizes:
            configuration = random_connected_configuration3(n, seed=SEED)
            positions = list(configuration.positions)
            array_seconds = _best_of(repeats, positions, k, "array", max_rounds)
            object_seconds = _best_of(repeats, positions, k, "object", max_rounds)
            speedup = object_seconds / array_seconds if array_seconds > 0 else math.inf
            results.append(
                {
                    "algorithm": f"kknps3(k={k})",
                    "workload": "random3",
                    "n": n,
                    "rounds": max_rounds,
                    "seed": SEED,
                    "seconds_array": round(array_seconds, 6),
                    "seconds_object": round(object_seconds, 6),
                    "speedup": round(speedup, 3),
                }
            )
            if verbose:
                print(
                    f"kknps3(k={k}) n={n:<4} "
                    f"array {array_seconds:8.3f}s   object {object_seconds:8.3f}s   "
                    f"speedup {speedup:6.2f}x"
                )
    headline = [r for r in results if r["algorithm"] == "kknps3(k=1)" and r["n"] == 200]
    return {
        "bench": "bench_engine3d",
        "description": (
            "3D round engine wall time: array mode (SoA positions, batched "
            "Look + vectorized destination rule) vs the retained object "
            "reference loop, bit-identical work on both sides."
        ),
        "sizes": list(sizes),
        "rounds": max_rounds,
        "repeats": repeats,
        "results": results,
        "headline_speedup_n200": headline[0]["speedup"] if headline else None,
    }


def _mega_config(max_activations: int, round_batching) -> AsyncSimulation3Config:
    return AsyncSimulation3Config(
        seed=SEED,
        max_activations=max_activations,
        stop_at_convergence=False,
        rotate_frames=True,
        round_batching=round_batching,
    )


def _mega_once(positions, max_activations: int, round_batching) -> float:
    started = time.perf_counter()
    run_simulation3_async(
        positions,
        KKNPS3Algorithm(k=1),
        SSyncScheduler(),
        _mega_config(max_activations, round_batching),
    )
    return time.perf_counter() - started


def run_mega(sides, *, smoke: bool, verbose: bool = True) -> dict:
    """The 3D mega-swarm axis through the continuous-time kernel.

    Lattice sizes up to :data:`MEGA_REFERENCE_MAX` also run the
    per-activation kernel path (``round_batching=False`` — the pinned
    bit-identical reference) and report the fast-path speedup over it;
    larger lattices record the fast path's end-to-end wall clock.
    """
    rows = []
    for side in sides:
        n = side ** 3
        activations = _mega_activations(n, smoke)
        positions = list(lattice_configuration3(side, spacing=0.55).positions)
        fast_seconds = _mega_once(positions, activations, None)
        row = {
            "algorithm": "kknps3(k=1)",
            "scheduler": "ssync",
            "workload": f"lattice3(side={side})",
            "n": n,
            "activations": activations,
            "seed": SEED,
            "seconds_fast": round(fast_seconds, 6),
        }
        if n <= MEGA_REFERENCE_MAX:
            reference_seconds = _mega_once(positions, activations, False)
            row["seconds_per_activation"] = round(reference_seconds, 6)
            row["speedup_round_batching"] = round(
                reference_seconds / fast_seconds if fast_seconds > 0 else math.inf, 3
            )
        rows.append(row)
        if verbose:
            reference = row.get("seconds_per_activation")
            suffix = (
                f"per-activation {reference:8.3f}s   "
                f"speedup {row['speedup_round_batching']:6.2f}x"
                if reference is not None
                else "(fast path only)"
            )
            print(f"kknps3(k=1) x ssync n={n:<7} fast {fast_seconds:8.3f}s   {suffix}")
    speedup_n1000 = next(
        (r["speedup_round_batching"] for r in rows if r["n"] == 1_000), None
    )
    return {
        "workload": "lattice3(spacing=0.55)",
        "reference_max_n": MEGA_REFERENCE_MAX,
        "results": rows,
        "round_batching_speedup_n1000": speedup_n1000,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grid + round budget: verifies the bench runs and emits valid JSON",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=BENCH_PATH,
        help=f"where to write the JSON results (default: {BENCH_PATH})",
    )
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    max_rounds = SMOKE_ROUNDS if args.smoke else FULL_ROUNDS
    repeats = SMOKE_REPEATS if args.smoke else FULL_REPEATS
    payload = run_grid(sizes, max_rounds, repeats)
    payload["mega"] = run_mega(
        SMOKE_MEGA_SIDES if args.smoke else MEGA_SIDES, smoke=args.smoke
    )
    payload["smoke"] = bool(args.smoke)

    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    # The JSON contract the CI smoke step relies on.
    parsed = json.loads(args.output.read_text())
    assert parsed["results"], "bench produced no results"
    for row in parsed["results"]:
        assert row["seconds_array"] > 0 and row["seconds_object"] > 0
    assert parsed["mega"]["results"], "bench produced no mega rows"
    for row in parsed["mega"]["results"]:
        assert row["seconds_fast"] > 0
    if not args.smoke:
        headline = parsed["headline_speedup_n200"]
        print(f"headline (kknps3 k=1, n=200): {headline}x")
        mega = parsed["mega"]["round_batching_speedup_n1000"]
        print(f"round batching (kknps3 x ssync, n=1000): {mega}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
