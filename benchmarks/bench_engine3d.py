"""Bench — 3D round engine wall time, array mode vs the retained object path.

The array-native 3D engine (``repro.spatial3d.engine3``) replaced the
per-robot ``Vector3`` round loop with one contiguous ``(n, 3)`` position
array: batched distance filtering per Look, fused-column rotation of
whole neighbour batches, the vectorized destination rule
(``KKNPS3Algorithm.compute_array``), vectorized per-round diameter and
cohesion reductions, and (for large swarms) 3x3x3-block candidate
queries against the shared uniform hash grid.  The object path — the
pre-array reference loop — is retained as ``engine_mode="object"`` and
property-tested bit-identical, which makes this benchmark an equal-work
comparison: both sides simulate the exact same rounds.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_engine3d.py            # full grid
    PYTHONPATH=src python benchmarks/bench_engine3d.py --smoke    # CI smoke

The full grid covers n in {25, 50, 100, 200, 400} on the random
connected 3D workload under the ssync3 discipline (60% activation
subsets, xi = 0.5, random frames).  The convergence threshold is set
unreachably low so every run executes the full round budget.  Results
are written to ``BENCH_engine3d.json``; ``--smoke`` shrinks the grid and
budget so the script (and its JSON contract) is exercised on every CI
push.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro.spatial3d import (
    KKNPS3Algorithm,
    Simulation3Config,
    random_connected_configuration3,
    run_simulation3,
)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine3d.json"

FULL_SIZES = (25, 50, 100, 200, 400)
SMOKE_SIZES = (8, 16)
FULL_ROUNDS = 30
SMOKE_ROUNDS = 4
#: Timed repetitions per (mode, cell); the minimum is reported, which is
#: the standard way to suppress scheduler/load noise in wall-time benches.
FULL_REPEATS = 3
SMOKE_REPEATS = 1
SEED = 3
K_VALUES = (1, 2)


def _config(engine_mode: str, max_rounds: int) -> Simulation3Config:
    return Simulation3Config(
        max_rounds=max_rounds,
        # Unreachable threshold: both modes execute the full budget.
        convergence_epsilon=1e-12,
        activation_probability=0.6,
        xi=0.5,
        seed=SEED,
        rotate_frames=True,
        engine_mode=engine_mode,
    )


def _run_once(positions, k: int, engine_mode: str, max_rounds: int) -> float:
    started = time.perf_counter()
    run_simulation3(positions, KKNPS3Algorithm(k=k), _config(engine_mode, max_rounds))
    return time.perf_counter() - started


def _best_of(repeats: int, positions, k: int, engine_mode: str, max_rounds: int) -> float:
    return min(_run_once(positions, k, engine_mode, max_rounds) for _ in range(repeats))


def run_grid(sizes, max_rounds: int, repeats: int, *, verbose: bool = True) -> dict:
    results = []
    for k in K_VALUES:
        for n in sizes:
            configuration = random_connected_configuration3(n, seed=SEED)
            positions = list(configuration.positions)
            array_seconds = _best_of(repeats, positions, k, "array", max_rounds)
            object_seconds = _best_of(repeats, positions, k, "object", max_rounds)
            speedup = object_seconds / array_seconds if array_seconds > 0 else math.inf
            results.append(
                {
                    "algorithm": f"kknps3(k={k})",
                    "workload": "random3",
                    "n": n,
                    "rounds": max_rounds,
                    "seed": SEED,
                    "seconds_array": round(array_seconds, 6),
                    "seconds_object": round(object_seconds, 6),
                    "speedup": round(speedup, 3),
                }
            )
            if verbose:
                print(
                    f"kknps3(k={k}) n={n:<4} "
                    f"array {array_seconds:8.3f}s   object {object_seconds:8.3f}s   "
                    f"speedup {speedup:6.2f}x"
                )
    headline = [r for r in results if r["algorithm"] == "kknps3(k=1)" and r["n"] == 200]
    return {
        "bench": "bench_engine3d",
        "description": (
            "3D round engine wall time: array mode (SoA positions, batched "
            "Look + vectorized destination rule) vs the retained object "
            "reference loop, bit-identical work on both sides."
        ),
        "sizes": list(sizes),
        "rounds": max_rounds,
        "repeats": repeats,
        "results": results,
        "headline_speedup_n200": headline[0]["speedup"] if headline else None,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grid + round budget: verifies the bench runs and emits valid JSON",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=BENCH_PATH,
        help=f"where to write the JSON results (default: {BENCH_PATH})",
    )
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    max_rounds = SMOKE_ROUNDS if args.smoke else FULL_ROUNDS
    repeats = SMOKE_REPEATS if args.smoke else FULL_REPEATS
    payload = run_grid(sizes, max_rounds, repeats)
    payload["smoke"] = bool(args.smoke)

    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    # The JSON contract the CI smoke step relies on.
    parsed = json.loads(args.output.read_text())
    assert parsed["results"], "bench produced no results"
    for row in parsed["results"]:
        assert row["seconds_array"] > 0 and row["seconds_object"] > 0
    if not args.smoke:
        headline = parsed["headline_speedup_n200"]
        print(f"headline (kknps3 k=1, n=200): {headline}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
