"""Bench D1 — Section 6.3.1: disconnected initial configurations."""

from __future__ import annotations

from repro.experiments import disconnected


def test_bench_disconnected(benchmark):
    """Each connected component converges to its own point; components never merge."""
    result = benchmark.pedantic(
        lambda: disconnected.run(
            n_components=3, robots_per_component=6, epsilon=0.05, max_activations=4000, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table().render())

    # Section 6.3.1: every connected subset converges to a single point.
    assert result.every_component_converged

    # Connectivity within each component is never lost.
    assert result.cohesion_maintained

    # Distinct components converge to distinct points: the minimum distance
    # between robots of different components stays far above epsilon.
    assert result.components_remain_separated
    assert result.min_inter_component_distance > 1.0
