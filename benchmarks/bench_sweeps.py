"""Bench — the parallel sweep engine over a 200+-run scenario grid.

This is the acceptance bench of the sweep subsystem: a grid of more than
200 (algorithm, scheduler, workload, seed) runs executes through the
:class:`~repro.sweeps.SweepRunner` with ``workers > 1``, lands in a
resumable JSONL file, aggregates into a table, and — re-run against the
same file — resumes instead of recomputing.  The qualitative claim it
pins is the paper's: KKNPS preserves cohesion across the whole grid.
"""

from __future__ import annotations

from repro.sweeps import SweepRunner, SweepSpec, load_completed_rows


def _grid() -> SweepSpec:
    # 2 algorithms x 3 schedulers x 3 workloads x 2 sizes x 6 seeds = 216 runs.
    return SweepSpec(
        algorithms=("kknps", "ando"),
        schedulers=("ssync", "k-async", "k-nesta"),
        workloads=("random", "blobs", "line"),
        n_robots=(5, 8),
        error_models=("exact",),
        seeds=tuple(range(6)),
        scheduler_k=2,
        epsilon=0.08,
        max_activations=400,
    )


def test_bench_parallel_sweep(benchmark, tmp_path):
    """216 runs through the runner with workers=4, persisted and resumable."""
    spec = _grid()
    assert spec.size() >= 200
    jsonl = tmp_path / "sweep.jsonl"

    result = benchmark.pedantic(
        lambda: SweepRunner(spec, workers=4, chunk_size=4, jsonl_path=jsonl).run(),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table().render())

    assert len(result) == spec.size()
    assert result.executed == spec.size()
    assert len(load_completed_rows(jsonl)) == spec.size()

    # The paper's algorithm preserves every initial visibility edge on the
    # whole grid; the bounded schedulers match its design assumptions.
    kknps_rows = [row for row in result.rows if row["algorithm"] == "kknps"]
    assert kknps_rows and all(row["cohesion"] for row in kknps_rows)

    # Re-running against the same JSONL resumes every run instead of
    # recomputing, and returns the very same rows.
    resumed = SweepRunner(spec, workers=4, jsonl_path=jsonl).run()
    assert resumed.executed == 0
    assert resumed.resumed == spec.size()
    assert resumed.deterministic_rows() == result.deterministic_rows()
