#!/usr/bin/env python3
"""Bench sweep behind the shared ``GRID_MIN_ROBOTS`` auto-threshold.

Each engine auto-enables the uniform spatial hash grid once a run reaches
its dimension's threshold — ``GRID_MIN_ROBOTS`` in the plane,
``GRID_MIN_ROBOTS_3D`` in 3-space (``repro.engine.spatial_index``; the
3D value was set from this bench's measurements).  This bench
measures, for swarm sizes around that threshold, the same run executed
with the grid forced on and forced off — in the planar continuous-time
engine and in the 3D round engine — and reports the grid:dense speedup
per size.  Constant-density workloads (grid/lattice spacings proportional
to ``V``) keep the per-Look neighbourhood bounded, which is the regime
the grid targets; metrics sampling is suppressed (``record_every`` past
the horizon) so the numbers isolate the Look path the threshold governs.

The measured table is recorded in ``docs/engine-performance.md``; rerun
with ``--output`` to regenerate the JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.algorithms import KKNPSAlgorithm  # noqa: E402
from repro.engine import SimulationConfig, run_simulation  # noqa: E402
from repro.engine.spatial_index import (  # noqa: E402
    GRID_MIN_ROBOTS,
    GRID_MIN_ROBOTS_3D,
)
from repro.schedulers import SSyncScheduler  # noqa: E402
from repro.spatial3d import (  # noqa: E402
    KKNPS3Algorithm,
    Simulation3Config,
    lattice_configuration3,
    run_simulation3,
)
from repro.workloads import truncated_grid_configuration  # noqa: E402


def time_2d(n: int, *, spatial_index: bool, activations: int, repeats: int) -> float:
    configuration = truncated_grid_configuration(n, spacing=0.7, visibility_range=1.0)
    best = float("inf")
    for _ in range(repeats):
        config = SimulationConfig(
            seed=7,
            max_activations=activations,
            convergence_epsilon=1e-12,
            stop_at_convergence=False,
            record_every=activations + 1,
            spatial_index=spatial_index,
        )
        started = time.perf_counter()
        run_simulation(configuration.positions, KKNPSAlgorithm(k=1),
                       SSyncScheduler(), config)
        best = min(best, time.perf_counter() - started)
    return best


def time_3d(side: int, *, spatial_index: bool, rounds: int, repeats: int) -> float:
    configuration = lattice_configuration3(side, spacing=0.6, visibility_range=1.0)
    best = float("inf")
    for _ in range(repeats):
        config = Simulation3Config(
            seed=7,
            max_rounds=rounds,
            convergence_epsilon=1e-12,
            activation_probability=0.6,
            xi=0.5,
            spatial_index=spatial_index,
        )
        started = time.perf_counter()
        run_simulation3(configuration.positions, KKNPS3Algorithm(k=1), config)
        best = min(best, time.perf_counter() - started)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", nargs="+", type=int, default=[128, 256, 512, 1024],
                        help="planar swarm sizes to measure")
    parser.add_argument("--sides", nargs="+", type=int, default=[5, 6, 8, 10],
                        help="3D lattice sides (n = side^3: 125, 216, 512, 1000)")
    parser.add_argument("--activations", type=int, default=600,
                        help="planar activation horizon per measurement")
    parser.add_argument("--rounds", type=int, default=5,
                        help="3D round horizon per measurement")
    parser.add_argument("--repeats", type=int, default=2, help="best-of repeats")
    parser.add_argument("--output", type=str, default=None, help="JSON output path")
    args = parser.parse_args(argv)

    results = {
        "grid_min_robots": GRID_MIN_ROBOTS,
        "grid_min_robots_3d": GRID_MIN_ROBOTS_3D,
        "planar": [],
        "spatial3d": [],
    }
    print(f"GRID_MIN_ROBOTS = {GRID_MIN_ROBOTS} (2D), {GRID_MIN_ROBOTS_3D} (3D)\n")
    print(f"{'engine':<9} {'n':>5} {'dense s':>9} {'grid s':>9} {'grid/dense':>11}")
    for n in args.n:
        dense = time_2d(n, spatial_index=False, activations=args.activations,
                        repeats=args.repeats)
        grid = time_2d(n, spatial_index=True, activations=args.activations,
                       repeats=args.repeats)
        results["planar"].append(
            {"n": n, "dense_s": dense, "grid_s": grid, "speedup": dense / grid}
        )
        print(f"{'planar':<9} {n:>5} {dense:>9.3f} {grid:>9.3f} {dense / grid:>10.2f}x")
    for side in args.sides:
        n = side ** 3
        dense = time_3d(side, spatial_index=False, rounds=args.rounds,
                        repeats=args.repeats)
        grid = time_3d(side, spatial_index=True, rounds=args.rounds,
                       repeats=args.repeats)
        results["spatial3d"].append(
            {"n": n, "dense_s": dense, "grid_s": grid, "speedup": dense / grid}
        )
        print(f"{'spatial3d':<9} {n:>5} {dense:>9.3f} {grid:>9.3f} {dense / grid:>10.2f}x")

    if args.output:
        Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nwritten to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
