"""Bench L12 — Lemmas 1-2 (Figures 5-9): reachable-region containment."""

from __future__ import annotations

from repro.experiments import lemma_regions


def test_bench_lemma_regions(benchmark):
    """Monte-Carlo containment of scaled-safe-region move sequences."""
    result = benchmark.pedantic(
        lambda: lemma_regions.run(trials=300, seed=0),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table().render())

    # Lemmas 1 and 2: no adversarial move sequence escapes the region.
    assert result.lemmas_hold
    assert result.lemma1.violations == 0
    assert result.lemma2.violations == 0

    # Negative control: inflating the per-move radius breaks containment,
    # so the zero-violation result above is not vacuous.
    assert result.inflated_control.violations > 0
