"""Bench — end-to-end ``Simulator.run`` wall time, new engine vs the pre-PR seed.

The array-native engine rebuilt the whole per-activation path: vectorized
kinematics (one numpy interpolation for all in-flight moves), a batched
snapshot pipeline (visibility mask, lexsort-certified coincidence
collapse, batch frame/perception transforms), grid-accelerated neighbour
candidates for large swarms, and an array-native metrics observation.

This bench measures the end-to-end effect: it runs identical simulations
through the new engine and through a faithful replica of the **pre-PR
seed engine** — the retained object snapshot path (per-Point loops and
the quadratic coincidence collapse) combined with a frozen copy of the
seed's ``MetricsCollector.observe`` internals (per-observe hull with a
numpy-scalar chain walk, the ``(n, n, 2)`` pairwise temporary, per-call
edge-list rebuilds, the object-path Welzl SEC).  Both sides simulate the
same seeds; results are written to ``BENCH_engine.json`` as the repo's
machine-readable perf trajectory.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_engine.py            # full grid
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke    # CI smoke

The full grid covers n in {25, 50, 100, 200, 400} for kknps/ando under
ssync/k-async.  A separate **mega-swarm** section extends the size axis
to n in {10^3, 10^4, 10^5} on the bounded-density truncated-grid
workload: at 10^3 the batched round fast path is timed against the
retained per-activation kernel path (same engine, ``round_batching``
off), and at 10^4/10^5 — where the per-activation path would take
minutes — the fast path's wall clock is recorded alone.  ``--smoke``
shrinks the grid and the activation budget so the script (and its JSON
contract) is exercised on every CI push.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path
from typing import List, Optional

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro.algorithms import AndoAlgorithm, KKNPSAlgorithm
from repro.engine import MetricsCollector, SimulationConfig, Simulator
from repro.engine.fanout import REPLICATE_FANOUT_MIN_ROBOTS
from repro.engine.metrics import MetricsSample
from repro.geometry.point import Point, points_to_array
from repro.geometry.sec import _is_in, _trivial, _circle_from_two
from repro.geometry.disk import Disk
from repro.model.visibility import broken_edges_from_matrix
from repro.schedulers import KAsyncScheduler, SSyncScheduler
from repro.workloads import random_connected_configuration, truncated_grid_configuration

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

FULL_SIZES = (25, 50, 100, 200, 400)
SMOKE_SIZES = (12, 25)
FULL_ACTIVATIONS = 300
SMOKE_ACTIVATIONS = 40
SEED = 3

#: Mega-swarm size axis: kknps x ssync on the bounded-density truncated
#: grid, timed through the batched round fast path.
MEGA_SIZES = (1_000, 10_000, 100_000)
SMOKE_MEGA_SIZES = (400,)
#: Largest mega size that also times the per-activation reference path
#: (``round_batching=False``); beyond it the reference would take minutes
#: per row, so the fast path's wall clock is recorded alone.
MEGA_REFERENCE_MAX = 1_000
#: A fresh measurement of the n=400 seed-engine headline must stay above
#: this fraction of the recorded value (generous CI-noise margin); the
#: floor itself is stored in the JSON so the gate reads one number.
PERF_FLOOR_FRACTION = 0.25


def _mega_activations(n: int, smoke: bool) -> int:
    """Activation budget for a mega row, scaled so the bench stays bounded.

    Roughly five ssync rounds at 10^3/10^4 and one round's worth at 10^5;
    smoke mode runs two rounds' worth at its single small size.
    """
    if smoke:
        return 2 * n
    return 5 * n if n <= 10_000 else n


# --------------------------------------------------------------------------
# Faithful replicas of the seed metrics internals (frozen at the PR-1 state).
# --------------------------------------------------------------------------

def _legacy_pairwise(arr: np.ndarray) -> np.ndarray:
    diff = arr[:, None, :] - arr[None, :, :]
    return np.sqrt((diff * diff).sum(axis=-1))


def _legacy_hull_vertices(arr: np.ndarray) -> List[Point]:
    """The seed ``convex_hull_array``: np.unique, then a numpy-scalar chain walk."""
    from repro.geometry.tolerances import EPS

    arr = np.asarray(arr, dtype=float).reshape(-1, 2)
    unique = np.unique(arr, axis=0) if len(arr) else arr
    m = len(unique)
    if m <= 2:
        return [Point(float(x), float(y)) for x, y in unique]
    xs, ys = unique[:, 0], unique[:, 1]

    def build(order) -> List[int]:
        chain: List[int] = []
        for i in order:
            while len(chain) >= 2:
                j, k = chain[-1], chain[-2]
                ax, ay = xs[j] - xs[k], ys[j] - ys[k]
                bx, by = xs[i] - xs[k], ys[i] - ys[k]
                cross = ax * by - ay * bx
                norms = math.hypot(ax, ay) * math.hypot(bx, by)
                if cross <= EPS * max(norms, EPS):
                    chain.pop()
                else:
                    break
            chain.append(i)
        return chain

    lower = build(range(m))
    upper = build(range(m - 1, -1, -1))
    hull = lower[:-1] + upper[:-1]
    if not hull:
        hull = [0, m - 1]
    return [Point(float(xs[i]), float(ys[i])) for i in hull]


def _legacy_hull_perimeter(vertices: List[Point]) -> float:
    if len(vertices) < 2:
        return 0.0
    total = 0.0
    for i, v in enumerate(vertices):
        total += v.distance_to(vertices[(i + 1) % len(vertices)])
    return total


def _legacy_sec(points: List[Point]) -> Disk:
    """The seed's object-path Welzl (Disk/Point objects, per-call shuffle)."""
    pts = list(points)
    if len(pts) > 3:
        rng = np.random.default_rng(0)
        order = rng.permutation(len(pts))
        pts = [pts[i] for i in order]
    disk: Optional[Disk] = None
    for i, p in enumerate(pts):
        if _is_in(disk, p):
            continue
        disk = Disk(p, 0.0)
        for j in range(i):
            q = pts[j]
            if _is_in(disk, q):
                continue
            disk = _circle_from_two(p, q)
            for k in range(j):
                r = pts[k]
                if _is_in(disk, r):
                    continue
                candidate = _trivial([p, q, r])
                if candidate is None:
                    far_pair = max(
                        ((a, b) for a in (p, q, r) for b in (p, q, r)),
                        key=lambda ab: ab[0].distance_to(ab[1]),
                    )
                    candidate = _circle_from_two(*far_pair)
                disk = candidate
    assert disk is not None
    return disk


class LegacyMetricsCollector(MetricsCollector):
    """``MetricsCollector`` with the seed's per-observe implementation."""

    def observe(self, time, positions, activations_processed):
        arr = points_to_array(
            positions if not isinstance(positions, np.ndarray) else positions
        )
        n = len(arr)
        hull_vertices = _legacy_hull_vertices(arr)
        if n >= 2:
            dist = _legacy_pairwise(arr)
            diameter = float(dist.max())
            min_pairwise = float(dist[~np.eye(n, dtype=bool)].min())
            broken = broken_edges_from_matrix(
                self.initial_edges, dist, self.visibility_range
            )
        else:
            diameter = 0.0
            min_pairwise = 0.0
            broken = set()
        if broken:
            self.cohesion_ever_violated = True
        sample = MetricsSample(
            time=time,
            hull_diameter=diameter,
            hull_perimeter=_legacy_hull_perimeter(hull_vertices),
            hull_radius=_legacy_sec(hull_vertices).radius if n else 0.0,
            min_pairwise_distance=min_pairwise,
            initial_edges_preserved=not broken,
            broken_edge_count=len(broken),
            activations_processed=activations_processed,
        )
        self.samples.append(sample)
        return sample


class SeedEngineSimulator(Simulator):
    """The pre-PR engine: object look path + seed metrics internals."""

    def _make_metrics(self) -> MetricsCollector:
        return LegacyMetricsCollector(visibility_range=self.config.visibility_range)


# --------------------------------------------------------------------------
# The grid.
# --------------------------------------------------------------------------

def _algorithms():
    return (
        ("kknps", lambda k: KKNPSAlgorithm(k=k)),
        ("ando", lambda k: AndoAlgorithm()),
    )


def _schedulers():
    return (
        ("ssync", lambda: SSyncScheduler(), 1),
        ("kasync", lambda: KAsyncScheduler(k=2), 2),
    )


def _config(
    max_activations: int,
    engine_mode: str,
    k: int,
    round_batching: Optional[bool] = None,
) -> SimulationConfig:
    return SimulationConfig(
        seed=SEED,
        max_activations=max_activations,
        stop_at_convergence=False,
        use_random_frames=False,
        k_bound=k,
        engine_mode=engine_mode,
        round_batching=round_batching,
    )


def _run_once(simulator_cls, positions, algorithm, scheduler, config) -> float:
    started = time.perf_counter()
    simulator_cls(positions, algorithm, scheduler, config).run()
    return time.perf_counter() - started


class _PhaseTimedSimulator(Simulator):
    """A Simulator that accumulates wall time per round-fast-path phase.

    Wraps the three phase primitives of the batched round path — the
    per-round :class:`ShardedGridIndex` build, the per-activation decide
    closure and the metrics observe — in ``perf_counter`` brackets.  The
    wrappers cost a few microseconds per call, so the phase split is
    measured in a *separate* run from the headline wall clock.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.phase_seconds = {"grid_build": 0.0, "decide": 0.0, "metrics": 0.0}

    def _round_shard(self, committed):
        started = time.perf_counter()
        shard = super()._round_shard(committed)
        self.phase_seconds["grid_build"] += time.perf_counter() - started
        return shard

    def _round_decider(self, look_time, committed, shard):
        inner = super()._round_decider(look_time, committed, shard)

        def decide(robot_id, activation):
            started = time.perf_counter()
            decision = inner(robot_id, activation)
            self.phase_seconds["decide"] += time.perf_counter() - started
            return decision

        return decide

    def _round_decide_batch(self, look_time, committed, shard, executed):
        started = time.perf_counter()
        decisions = super()._round_decide_batch(look_time, committed, shard, executed)
        self.phase_seconds["decide"] += time.perf_counter() - started
        return decisions

    def _make_metrics(self):
        metrics = super()._make_metrics()
        inner_observe = metrics.observe
        phase_seconds = self.phase_seconds

        def observe(time_, positions, processed):
            started = time.perf_counter()
            sample = inner_observe(time_, positions, processed)
            phase_seconds["metrics"] += time.perf_counter() - started
            return sample

        metrics.observe = observe
        return metrics


def _run_phased(positions, algorithm, scheduler, config) -> dict:
    """One instrumented fast-path run; per-phase seconds plus the rest."""
    simulator = _PhaseTimedSimulator(positions, algorithm, scheduler, config)
    started = time.perf_counter()
    simulator.run()
    total = time.perf_counter() - started
    phases = {k: round(v, 6) for k, v in simulator.phase_seconds.items()}
    phases["other"] = round(max(0.0, total - sum(simulator.phase_seconds.values())), 6)
    return phases


def run_grid(sizes, max_activations: int, *, verbose: bool = True) -> dict:
    results = []
    for algo_name, algo_factory in _algorithms():
        for sched_name, sched_factory, k in _schedulers():
            for n in sizes:
                configuration = random_connected_configuration(n, seed=SEED)
                positions = list(configuration.positions)
                new_seconds = _run_once(
                    Simulator, positions, algo_factory(k), sched_factory(),
                    _config(max_activations, "array", k),
                )
                seed_seconds = _run_once(
                    SeedEngineSimulator, positions, algo_factory(k), sched_factory(),
                    _config(max_activations, "object", k),
                )
                speedup = seed_seconds / new_seconds if new_seconds > 0 else math.inf
                results.append(
                    {
                        "algorithm": algo_name,
                        "scheduler": sched_name,
                        "n": n,
                        "activations": max_activations,
                        "seed": SEED,
                        "seconds_new": round(new_seconds, 6),
                        "seconds_seed_engine": round(seed_seconds, 6),
                        "speedup": round(speedup, 3),
                    }
                )
                if verbose:
                    print(
                        f"{algo_name:>6} x {sched_name:<7} n={n:<4} "
                        f"new {new_seconds:8.3f}s   seed {seed_seconds:8.3f}s   "
                        f"speedup {speedup:6.2f}x"
                    )
    def headline(n: int):
        rows = [
            r for r in results
            if r["algorithm"] == "kknps" and r["scheduler"] == "ssync" and r["n"] == n
        ]
        return rows[0]["speedup"] if rows else None

    n400 = headline(400)
    return {
        "bench": "bench_engine",
        "description": (
            "End-to-end Simulator.run wall time: array-native engine vs a "
            "faithful replica of the pre-PR seed engine (object snapshot "
            "path + seed metrics internals), exact perception, no frames."
        ),
        "sizes": list(sizes),
        "activations": max_activations,
        "results": results,
        "headline_speedup_kknps_ssync_n200": headline(200),
        "headline_speedup_kknps_ssync_n400": n400,
        "perf_floor_kknps_ssync_n400": (
            round(PERF_FLOOR_FRACTION * n400, 3) if n400 else None
        ),
    }


def run_mega(sizes, *, smoke: bool, verbose: bool = True) -> dict:
    """The mega-swarm axis: kknps x ssync through the round fast path.

    Sizes up to :data:`MEGA_REFERENCE_MAX` also run the per-activation
    kernel path (``round_batching=False`` — same engine, same floats, the
    pinned bit-identical reference) and report the fast-path speedup over
    it; larger sizes record the fast path's end-to-end wall clock, which
    is the ROADMAP's 10^4–10^5 headline.
    """
    rows = []
    for n in sizes:
        activations = _mega_activations(n, smoke)
        positions = list(truncated_grid_configuration(n, spacing=0.7).positions)
        fast_seconds = _run_once(
            Simulator, positions, KKNPSAlgorithm(k=1), SSyncScheduler(),
            _config(activations, "array", 1),
        )
        phases = _run_phased(
            positions, KKNPSAlgorithm(k=1), SSyncScheduler(),
            _config(activations, "array", 1),
        )
        row = {
            "algorithm": "kknps",
            "scheduler": "ssync",
            "workload": "truncated_grid",
            "n": n,
            "activations": activations,
            "seed": SEED,
            "seconds_fast": round(fast_seconds, 6),
            "phase_seconds": phases,
        }
        if n <= MEGA_REFERENCE_MAX:
            reference_seconds = _run_once(
                Simulator, positions, KKNPSAlgorithm(k=1), SSyncScheduler(),
                _config(activations, "array", 1, round_batching=False),
            )
            row["seconds_per_activation"] = round(reference_seconds, 6)
            row["speedup_round_batching"] = round(
                reference_seconds / fast_seconds if fast_seconds > 0 else math.inf, 3
            )
        rows.append(row)
        if verbose:
            reference = row.get("seconds_per_activation")
            suffix = (
                f"per-activation {reference:8.3f}s   "
                f"speedup {row['speedup_round_batching']:6.2f}x"
                if reference is not None
                else "(fast path only)"
            )
            print(
                f" kknps x ssync   n={n:<7} fast {fast_seconds:8.3f}s   {suffix}"
            )
            print(
                f"                 phases: grid {phases['grid_build']:.3f}s   "
                f"decide {phases['decide']:.3f}s   metrics {phases['metrics']:.3f}s   "
                f"other {phases['other']:.3f}s"
            )
    speedup_n1000 = next(
        (r["speedup_round_batching"] for r in rows if r["n"] == 1_000), None
    )
    # Decide-phase throughput floor for tools/perf_gate.py, anchored on the
    # n=10^4 row (the ROADMAP's mid mega size; the largest row in smoke).
    anchor = next((r for r in rows if r["n"] == 10_000), rows[-1] if rows else None)
    decide_floor = None
    if anchor and anchor["phase_seconds"]["decide"] > 0:
        throughput = anchor["activations"] / anchor["phase_seconds"]["decide"]
        decide_floor = round(PERF_FLOOR_FRACTION * throughput, 3)
    return {
        "workload": "truncated_grid(spacing=0.7)",
        "reference_max_n": MEGA_REFERENCE_MAX,
        "results": rows,
        "round_batching_speedup_n1000": speedup_n1000,
        "decide_floor_n": anchor["n"] if anchor else None,
        "perf_floor_decide_activations_per_second": decide_floor,
    }


#: The replicate-batching acceptance cell: a 16-seed kknps x ssync bundle
#: at n=10^3 (the sweep grid's seed axis at mid scale).
REPLICATE_N = 1_000
REPLICATE_SEEDS = 16
REPLICATE_ACTIVATIONS = 400
#: Measurement repetitions per side; both sides report their best rep
#: (single-vCPU CI hosts show multi-second sporadic noise, so a mean
#: would gate on the host, not the code).
REPLICATE_REPS = 5


def run_replicates(*, smoke: bool, verbose: bool = True) -> dict:
    """Replicate batching: one 16-seed bundle vs 16 sequential fast-path runs.

    Both sides execute the identical run specs (same workloads, same RNG
    streams); every batched result is asserted bit-identical to its
    serial counterpart before any timing is reported.  Wall clocks are
    best-of-:data:`REPLICATE_REPS` per side.
    """
    from repro.engine.replicate import run_replicated_simulations
    from repro.sweeps.runner import planar_setup
    from repro.sweeps.spec import RunSpec

    n = 50 if smoke else REPLICATE_N
    seeds = 4 if smoke else REPLICATE_SEEDS
    activations = 120 if smoke else REPLICATE_ACTIVATIONS
    reps = 1 if smoke else REPLICATE_REPS

    def spec(seed: int) -> RunSpec:
        return RunSpec(
            algorithm="kknps", scheduler="ssync", workload="grid", n_robots=n,
            error_model="exact", seed=seed, scheduler_k=2, epsilon=0.05,
            max_activations=activations,
        )

    def factory_for(seed: int):
        def factory():
            configuration, algorithm, scheduler, config = planar_setup(spec(seed))
            return configuration.positions, algorithm, scheduler, config

        return factory

    serial_times, batched_times = [], []
    for _ in range(reps):
        # The mega section leaves a fragmented heap behind; start each rep
        # from a collected state so neither side inherits it.
        import gc

        gc.collect()
        started = time.perf_counter()
        serial = [Simulator(*factory_for(s)()).run() for s in range(seeds)]
        mid = time.perf_counter()
        batched = run_replicated_simulations(
            [factory_for(s) for s in range(seeds)], fanout_workers=0
        )
        serial_times.append(mid - started)
        batched_times.append(time.perf_counter() - mid)
        for a, b in zip(serial, batched):
            assert a.activations_processed == b.activations_processed
            assert tuple(a.final_configuration.positions) == tuple(
                b.final_configuration.positions
            )
            assert a.metrics.samples == b.metrics.samples
            assert a.records == b.records
            assert a.activation_end_times == b.activation_end_times
            assert a.converged == b.converged
            assert a.convergence_time == b.convergence_time
            assert a.final_time == b.final_time
    serial_best = min(serial_times)
    batched_best = min(batched_times)
    speedup = serial_best / batched_best if batched_best > 0 else math.inf
    runs_per_second = seeds / batched_best if batched_best > 0 else math.inf
    if verbose:
        print(
            f" kknps x ssync   n={n} x {seeds} seeds   "
            f"serial best {serial_best:7.3f}s   batched best {batched_best:7.3f}s   "
            f"speedup {speedup:6.2f}x   ({runs_per_second:.1f} runs/s, bit-identical)"
        )
    return {
        "algorithm": "kknps",
        "scheduler": "ssync",
        "workload": "grid",
        "n": n,
        "seeds": seeds,
        "activations": activations,
        "reps": reps,
        "seconds_serial_best": round(serial_best, 6),
        "seconds_batched_best": round(batched_best, 6),
        "speedup_replicate_batching": round(speedup, 3),
        "runs_per_second_batched": round(runs_per_second, 3),
        "bit_identical": True,
        "perf_floor_replicate_runs_per_second": round(
            PERF_FLOOR_FRACTION * runs_per_second, 3
        ),
        # The process fan-out crossover in effect for this run (env-
        # overridable via REPRO_REPLICATE_FANOUT_MIN_ROBOTS); recorded so
        # recalibrations leave an audit trail next to the timings that
        # justify them.
        "fanout_min_robots": REPLICATE_FANOUT_MIN_ROBOTS,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grid + activation budget: verifies the bench runs and emits valid JSON",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=BENCH_PATH,
        help=f"where to write the JSON results (default: {BENCH_PATH})",
    )
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    max_activations = SMOKE_ACTIVATIONS if args.smoke else FULL_ACTIVATIONS
    payload = run_grid(sizes, max_activations)
    payload["mega"] = run_mega(
        SMOKE_MEGA_SIZES if args.smoke else MEGA_SIZES, smoke=args.smoke
    )
    payload["replicates"] = run_replicates(smoke=args.smoke)
    payload["smoke"] = bool(args.smoke)

    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    # The JSON contract the CI smoke step relies on.
    parsed = json.loads(args.output.read_text())
    assert parsed["results"], "bench produced no results"
    for row in parsed["results"]:
        assert row["seconds_new"] > 0 and row["seconds_seed_engine"] > 0
    assert parsed["mega"]["results"], "bench produced no mega rows"
    for row in parsed["mega"]["results"]:
        assert row["seconds_fast"] > 0
        assert row["phase_seconds"]["decide"] > 0
    assert parsed["replicates"]["bit_identical"]
    assert parsed["replicates"]["runs_per_second_batched"] > 0
    if not args.smoke:
        headline = parsed["headline_speedup_kknps_ssync_n200"]
        print(f"headline (kknps x ssync, n=200): {headline}x")
        mega = parsed["mega"]["round_batching_speedup_n1000"]
        print(f"round batching (kknps x ssync, n=1000): {mega}x")
        replicates = parsed["replicates"]["speedup_replicate_batching"]
        print(f"replicate batching (kknps x ssync, n=1000 x 16 seeds): {replicates}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
