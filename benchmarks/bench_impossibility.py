"""Bench I1 — Section 7 (Figures 19-22): impossibility under unbounded Async."""

from __future__ import annotations

from repro.experiments import impossibility


def test_bench_impossibility(benchmark):
    """Run the spiral + sliver-flattening adversary and verify every claim."""
    result = benchmark.pedantic(
        lambda: impossibility.run(psi=0.3, delta=0.05, skew=0.1),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.headline_table())
    print()
    print(result.hub_move_table().render())
    print()
    print(result.witness_table().render())

    report = result.report

    # The construction is legal: every adversarial activation stays inside
    # the lens of the moved robot's two chain neighbours.
    assert report.construction_is_legal

    # The accumulated hub-distance drift respects the paper's 4*psi^2 bound,
    # and every manipulated chain edge stayed inside the distance-error band
    # (so it could always be perceived as exactly the visibility threshold).
    assert report.drift_within_paper_bound
    assert report.edges_indistinguishable_from_threshold

    # The forced-motion witnesses exist for the turn angles the adversary uses.
    assert all(w.is_valid() for w in report.witnesses)

    # The hub's forced move (for both representative natural algorithms)
    # lands in the C-side half sector and breaks the (X_A, X_B) edge.
    assert all(m.in_c_side_half_sector for m in report.hub_moves)
    assert report.any_representative_breaks_visibility
    assert all(report.visibility_broken.values())

    # The final visibility graph is disconnected into linearly separable parts,
    # so Cohesive Convergence has been violated.
    assert report.final_components >= 2
    assert report.components_linearly_separable
    assert result.impossibility_demonstrated
