"""Bench T1 — the headline separation matrix (Theorems 3-4 vs Figure 4 / Section 7)."""

from __future__ import annotations

from repro.experiments import separation_matrix


def test_bench_separation_matrix(benchmark):
    """Algorithm x scheduler success matrix: who preserves cohesion, who converges."""
    result = benchmark.pedantic(
        lambda: separation_matrix.run(
            n_robots=8, runs_per_cell=2, max_activations=4000, epsilon=0.05, k=4, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table().render())

    # Positive side of the separation: the paper's algorithm (at a matching
    # k) converges cohesively under every stochastic scheduler class.
    for scheduler in ("ssync", "1-async", "4-async", "4-nesta"):
        cell = result.cell("kknps(k matched)", scheduler)
        assert cell is not None
        assert cell.always_cohesive
        assert cell.always_converged

    # Constructive failures: Ando breaks cohesion under both Figure-4
    # adversaries, while the paper's algorithm survives the same timelines.
    for adversary in ("fig4 1-async adversary", "fig4 2-nesta adversary"):
        ando_cell = result.cell("ando", adversary)
        kknps_cell = result.cell("kknps(k matched)", adversary)
        assert ando_cell is not None and kknps_cell is not None
        assert ando_cell.cohesion_preserved == 0
        assert kknps_cell.cohesion_preserved == 1
