"""Bench E1 — Section 6.1 / Figure 18: error tolerance of the paper's algorithm."""

from __future__ import annotations

import math

from repro.experiments import error_tolerance


def test_bench_error_tolerance(benchmark):
    """Error-model grid plus the Figure-18 linear-motion-error threshold sweep."""
    result = benchmark.pedantic(
        lambda: error_tolerance.run(
            n_robots=8, seed=0, max_activations=10000, epsilon=0.05, k=4
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table().render())
    print()
    print(result.figure18_table().render())

    # Tolerated error models (relative distance error, bounded skew,
    # quadratic motion error) never break cohesion and still converge.
    assert result.tolerated_models_all_cohesive
    tolerated = [r for r in result.runs if not r.label.startswith("linear")]
    assert all(r.converged for r in tolerated)

    # Figure 18: with adversarial *linear* relative motion error, a pair at
    # exactly visibility range can be pushed apart once the coefficient
    # exceeds roughly tan(commanded angle); small coefficients cannot.
    threshold = math.tan(result.figure18[0].commanded_angle)
    assert any(row.separated for row in result.figure18 if row.error_coefficient > threshold)
    assert all(
        not row.separated for row in result.figure18 if row.error_coefficient <= 0.5
    )
