"""Bench X2 — 3D separation: scripted k-Async overlap vs the lifted spiral."""

from __future__ import annotations

from repro.experiments import separation_3d


def test_bench_separation_3d(benchmark):
    """Scripted-schedule cohesion and the lifted Section-7 edge break."""
    result = benchmark.pedantic(
        lambda: separation_3d.run(j_values=(1, 2, 4), epochs=3, seed=0),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table().render())

    # Every scripted timeline is certified at its declared asynchrony, and
    # the j > 1 timelines genuinely exceed the (j-1)-Async constraint.
    assert all(row.certified_j_async for row in result.scripted_rows)
    assert all(
        row.strictly_j_async
        for row in result.scripted_rows
        if row.schedule_j > 1
    )

    # Matched asynchrony: the safe-ball analysis holds on adversarial
    # scripted overlap timelines, not just stochastic schedulers.
    assert result.matched_rows_cohesive

    # The lifted spiral: the 3D rule's forced hub move breaks the
    # (X_A, X_B) edge under a legal, in-plane adversarial flattening.
    spiral = result.spiral_row
    assert spiral.construction_is_legal
    assert spiral.move_is_planar
    assert spiral.zeta > spiral.required_zeta
    assert result.spiral_breaks_visibility
