"""Bench C1 — Section 5: congregation under k-Async (scaling in n and k, ablations)."""

from __future__ import annotations

from repro.experiments import convergence


def test_bench_convergence(benchmark):
    """Convergence sweep over n and k, plus the DESIGN.md ablations."""
    result = benchmark.pedantic(
        lambda: convergence.run(
            n_values=(5, 10, 15),
            k_values=(1, 2, 4),
            epsilon=0.05,
            max_activations=25000,
            seed=0,
            include_ablations=True,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table().render())

    # Every paper-parameter run converges and preserves every initial edge.
    paper_rows = [row for row in result.rows if row.label == "kknps (paper)"]
    assert paper_rows
    for row in paper_rows:
        assert row.converged
        assert row.cohesion
        # Cohesion with margin: no initial edge ever reached the range V.
        assert row.max_initial_edge_stretch <= 1.0 + 1e-9

    # The 1/k scaling slows progress: larger k needs at least as many
    # activations to converge on the same workload.
    k_rows = sorted(
        (row for row in paper_rows if row.n_robots == 10), key=lambda row: row.k
    )
    if len(k_rows) >= 2:
        assert k_rows[0].activations <= k_rows[-1].activations
