"""Bench — static process pool vs work-stealing on a deliberately skewed grid.

The straggler problem: a sweep mixing cheap runs (n=6 planar) with
expensive ones (n=120 planar, n=48 3D) hands the static pool its worst
case — chunked assignment in expansion order parks the expensive tail
on one worker while the rest idle.  The work-stealing backend orders the
queue largest-first (cost model), shrinks chunks as the queue drains,
and lets idle workers steal, so the tail spreads.

Two measurements, written to ``BENCH_backends.json``:

* **scheduling** — the same skewed grid executed with a *calibrated
  simulated run function* (each "run" sleeps for a duration proportional
  to its spec's ``cost_hint``).  Sleeping runs parallelise on any
  machine, so this isolates the scheduling layer — chunk placement,
  steal-on-idle, straggler tail — from CPU-core contention, and is the
  regime remote/IO-bound workers (the socket backend) live in.  The
  headline numbers (wall time, straggler tail, speedup) come from here.
* **end_to_end** — a smaller skewed grid through the real
  :func:`~repro.sweeps.runner.execute_run`.  On a multi-core host this
  shows the same win in CPU-bound form; on a single-core host it
  degrades to parity (total CPU is the floor), which the JSON records
  alongside ``cpu_count``.
* **churn** — the same simulated grid on the socket backend, clean and
  with one worker SIGKILLed a quarter of the way in.  The coordinator
  requeues the dead worker's leased chunk and finishes on the
  survivors; the section records the recovery overhead (killed wall /
  clean wall) plus the loss and requeue counters.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_backends.py            # full grid
    PYTHONPATH=src python benchmarks/bench_backends.py --smoke    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time
from pathlib import Path
from typing import Dict, List, Sequence

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.sweeps import RunSpec
from repro.sweeps.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SocketBackend,
    WorkStealingBackend,
)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_backends.json"

WORKERS = 4
#: Static-pool chunk size: the acceptance-test setting (see bench_sweeps.py).
STATIC_CHUNK = 4
#: Seconds of simulated work per cost-hint unit (scheduling section); the
#: full skewed grid totals ~1.2M cost units -> ~8 s of simulated work.
FULL_SCALE = 7e-6
SMOKE_SCALE = 1.2e-6


def _light(seed: int, max_activations: int) -> RunSpec:
    return RunSpec(
        algorithm="kknps", scheduler="ssync", workload="line", n_robots=6,
        seed=seed, epsilon=0.08, max_activations=max_activations,
    )


def _heavy_planar(seed: int, n: int, max_activations: int) -> RunSpec:
    return RunSpec(
        algorithm="kknps", scheduler="ssync", workload="random", n_robots=n,
        seed=seed, epsilon=0.05, max_activations=max_activations,
    )


def _heavy_3d(seed: int, n: int, rounds: int) -> RunSpec:
    return RunSpec(
        algorithm="kknps3", scheduler="ssync3", workload="random3", n_robots=n,
        seed=seed, algorithm_params=(("k", 1),), scheduler_k=1,
        epsilon=0.05, max_activations=rounds,
    )


def skewed_grid(*, smoke: bool) -> List[RunSpec]:
    """Mixed-n, mixed-dimension runs, cheap first and expensive last.

    Ascending-cost order is the natural way users write grids (small n
    first) and is exactly what chunks the expensive tail onto one static
    worker.
    """
    if smoke:
        return (
            [_light(seed, 150) for seed in range(12)]
            + [_heavy_planar(seed, 60, 600) for seed in range(2)]
            + [_heavy_3d(0, 24, 20)]
        )
    return (
        [_light(seed, 300) for seed in range(24)]
        + [_heavy_planar(seed, 120, 2000) for seed in range(4)]
        + [_heavy_3d(seed, 48, 40) for seed in range(2)]
    )


# -- scheduling section: calibrated simulated runs ---------------------------

#: Set in each worker via the spec's cost; module-level so it pickles.
_SIMULATED_SCALE = float(os.environ.get("BENCH_BACKENDS_SCALE", FULL_SCALE))


def simulated_run(spec: RunSpec) -> Dict[str, object]:
    """Sleep for the spec's modelled cost and return a minimal row."""
    duration = spec.cost_hint() * _SIMULATED_SCALE
    time.sleep(duration)
    return {"run_key": spec.run_key, "simulated_s": duration}


def _drain(backend: ExecutionBackend, specs: Sequence[RunSpec]) -> Dict[str, object]:
    """Execute the grid on ``backend`` and summarise wall time + balance."""
    started = time.perf_counter()
    rows = sum(1 for _ in backend.execute(specs))
    wall = time.perf_counter() - started
    assert rows == len(specs), f"backend dropped rows: {rows}/{len(specs)}"
    stats = backend.stats()
    busy = [worker.busy_s for worker in stats.worker_health] or [0.0]
    summary = {
        "backend": stats.backend,
        "workers": stats.workers,
        "wall_s": round(wall, 4),
        "worker_busy_s": [round(b, 4) for b in sorted(busy, reverse=True)],
        # The straggler tail: how long the last worker kept running after
        # the first one went idle (assuming a common start).
        "straggler_tail_s": round(max(busy) - min(busy), 4),
        "imbalance": round(max(busy) / (sum(busy) / len(busy)), 3)
        if sum(busy) > 0
        else 1.0,
    }
    if stats.backend == "work-stealing":
        summary["steals"] = stats.steals
    return summary


def bench_scheduling(specs: Sequence[RunSpec], scale: float) -> Dict[str, object]:
    global _SIMULATED_SCALE
    _SIMULATED_SCALE = scale
    os.environ["BENCH_BACKENDS_SCALE"] = repr(scale)
    static = _drain(
        ProcessPoolBackend(workers=WORKERS, chunk_size=STATIC_CHUNK, run_fn=simulated_run),
        specs,
    )
    stealing = _drain(WorkStealingBackend(workers=WORKERS, run_fn=simulated_run), specs)
    return {
        "simulated_total_s": round(sum(s.cost_hint() for s in specs) * scale, 4),
        "static_pool": static,
        "work_stealing": stealing,
        "speedup": round(static["wall_s"] / stealing["wall_s"], 3),
    }


def bench_churn(specs: Sequence[RunSpec], scale: float) -> Dict[str, object]:
    """Socket-backend fault tolerance: clean run vs one worker SIGKILLed.

    The kill fires after a quarter of the rows have streamed back, so the
    victim is almost certainly mid-chunk; the coordinator requeues its
    lease and the survivors finish the sweep.  Recovery overhead is the
    killed wall time over the clean wall time — the price of losing one
    of ``WORKERS`` workers plus re-executing the interrupted chunk.
    """
    global _SIMULATED_SCALE
    _SIMULATED_SCALE = scale
    os.environ["BENCH_BACKENDS_SCALE"] = repr(scale)
    clean = _drain(SocketBackend(workers=WORKERS, run_fn=simulated_run), specs)

    backend = SocketBackend(workers=WORKERS, run_fn=simulated_run)
    kill_after = max(2, len(specs) // 4)
    started = time.perf_counter()
    rows = 0
    killed = False
    for _ in backend.execute(specs):
        rows += 1
        if not killed and rows >= kill_after:
            victim = next(p for p in backend._processes if p.is_alive())
            os.kill(victim.pid, signal.SIGKILL)
            killed = True
    wall = time.perf_counter() - started
    assert rows == len(specs), f"churn run dropped rows: {rows}/{len(specs)}"
    stats = backend.stats()
    return {
        "socket_clean": clean,
        "socket_killed": {
            "backend": stats.backend,
            "workers": stats.workers,
            "wall_s": round(wall, 4),
            "killed_after_rows": kill_after,
            "worker_losses": stats.worker_losses,
            "requeued_chunks": stats.requeued_chunks,
        },
        "recovery_overhead": round(wall / clean["wall_s"], 3)
        if clean["wall_s"] > 0
        else 1.0,
    }


def bench_end_to_end(specs: Sequence[RunSpec]) -> Dict[str, object]:
    static = _drain(ProcessPoolBackend(workers=WORKERS, chunk_size=STATIC_CHUNK), specs)
    stealing = _drain(WorkStealingBackend(workers=WORKERS), specs)
    return {
        "static_pool": static,
        "work_stealing": stealing,
        "speedup": round(static["wall_s"] / stealing["wall_s"], 3),
        "note": (
            "CPU-bound: with cpu_count near 1 this degrades to parity; the "
            "scheduling section above isolates the balance effect."
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grid + short delays: verifies the bench runs and emits valid JSON",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=BENCH_PATH,
        help=f"where to write the JSON results (default: {BENCH_PATH})",
    )
    args = parser.parse_args(argv)

    specs = skewed_grid(smoke=args.smoke)
    costs = [spec.cost_hint() for spec in specs]
    scale = SMOKE_SCALE if args.smoke else FULL_SCALE

    print(f"skewed grid: {len(specs)} runs, cost skew {max(costs) / min(costs):.0f}x")
    scheduling = bench_scheduling(specs, scale)
    print(
        f"scheduling  static {scheduling['static_pool']['wall_s']:.2f}s "
        f"(tail {scheduling['static_pool']['straggler_tail_s']:.2f}s)  "
        f"work-stealing {scheduling['work_stealing']['wall_s']:.2f}s "
        f"(tail {scheduling['work_stealing']['straggler_tail_s']:.2f}s, "
        f"{scheduling['work_stealing']['steals']} steals)  "
        f"speedup {scheduling['speedup']:.2f}x"
    )
    end_to_end = bench_end_to_end(
        skewed_grid(smoke=True) if not args.smoke else specs[: max(4, len(specs) // 2)]
    )
    print(
        f"end-to-end  static {end_to_end['static_pool']['wall_s']:.2f}s  "
        f"work-stealing {end_to_end['work_stealing']['wall_s']:.2f}s  "
        f"speedup {end_to_end['speedup']:.2f}x"
    )
    churn = bench_churn(specs, scale)
    print(
        f"churn       socket clean {churn['socket_clean']['wall_s']:.2f}s  "
        f"1 of {WORKERS} workers killed {churn['socket_killed']['wall_s']:.2f}s "
        f"(losses {churn['socket_killed']['worker_losses']}, "
        f"requeued {churn['socket_killed']['requeued_chunks']})  "
        f"recovery overhead {churn['recovery_overhead']:.2f}x"
    )

    payload = {
        "bench": "bench_backends",
        "description": (
            "Static multiprocessing pool vs work-stealing backend on a "
            "deliberately skewed grid (mixed n, mixed dimension, expensive "
            "tail last).  The scheduling section runs calibrated simulated "
            "runs (sleep proportional to cost_hint) to isolate chunk "
            "placement and steal-on-idle from CPU-core contention; the "
            "end_to_end section runs the real execute_run; the churn "
            "section measures socket-backend recovery from a worker "
            "SIGKILLed mid-sweep (lease requeue)."
        ),
        "smoke": bool(args.smoke),
        "cpu_count": os.cpu_count(),
        "workers": WORKERS,
        "static_chunk_size": STATIC_CHUNK,
        "grid": {
            "runs": len(specs),
            "cost_skew": round(max(costs) / min(costs), 1),
            "dimensions": sorted(
                {3 if spec.algorithm.endswith("3") else 2 for spec in specs}
            ),
        },
        "scheduling": scheduling,
        "end_to_end": end_to_end,
        "churn": churn,
        "headline_scheduling_speedup": scheduling["speedup"],
    }

    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    # The JSON contract the CI smoke step relies on.
    parsed = json.loads(args.output.read_text())
    assert parsed["scheduling"]["static_pool"]["wall_s"] > 0
    assert parsed["scheduling"]["work_stealing"]["wall_s"] > 0
    if not args.smoke:
        # The acceptance claim: work-stealing beats the static pool on the
        # skewed grid, and shrinks its straggler tail.
        assert parsed["headline_scheduling_speedup"] > 1.0, parsed["scheduling"]
        assert (
            parsed["scheduling"]["work_stealing"]["straggler_tail_s"]
            < parsed["scheduling"]["static_pool"]["straggler_tail_s"]
        ), parsed["scheduling"]
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
