"""Bench L5 — Lemma 5 / Theorem 4 (Figures 10-14): no doomed engagement."""

from __future__ import annotations

from repro.analysis.chains import LEMMA5_COS_BOUND
from repro.experiments import lemma5_chain


def test_bench_lemma5_chain(benchmark):
    """Adversarial engagement search: the pair never separates beyond V."""
    result = benchmark.pedantic(
        lambda: lemma5_chain.run(k_values=(1, 2, 4), steps=30, trials=100, seed=0),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table().render())
    print(f"Lemma 5 cosine bound: {LEMMA5_COS_BOUND:.6f}")

    # Theorem 4: the greedy adversary never exceeds the visibility range.
    assert result.theorem4_holds
    for _, ratio, _, _ in result.per_k:
        assert ratio <= 1.0 + 1e-9
        # The search is adversarially effective: it gets close to the V bound,
        # so staying below it is informative rather than vacuous.
        assert ratio > 0.9

    # The Lemma-5 edge inequality holds along the worst trace found.
    assert result.lemma5_margin_satisfied
