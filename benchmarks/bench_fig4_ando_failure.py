"""Bench F4 — Figure 4: Ando loses visibility under 1-Async / 2-NestA; KKNPS does not."""

from __future__ import annotations

from repro.experiments import fig4_ando_failure


def test_bench_fig4_ando_failure(benchmark):
    """Replay both adversarial timelines and check the separation claim."""
    result = benchmark.pedantic(
        lambda: fig4_ando_failure.run(with_search=True, search_candidates=60),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table().render())

    # Figure 4's claim: the unmodified Ando algorithm drives X and Y more
    # than V apart under both timelines.
    assert result.ando_breaks_both_timelines

    # The contrast the separation rests on: the paper's algorithm, run at
    # the matching asynchrony bound, preserves the pair's visibility under
    # the very same timelines.
    assert result.kknps_preserves_both_timelines

    # The failure is not a knife-edge artefact: the randomised family
    # search also finds separating instances.
    assert result.search_breaking_instances > 0
    assert result.search_best_separation is not None
    assert result.search_best_separation > 1.0
