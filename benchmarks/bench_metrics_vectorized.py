"""Bench — the vectorized metrics hot path vs the seed's per-Point loops.

``MetricsCollector.observe`` runs after every processed activation, so its
cost multiplies into every experiment and sweep.  The vectorized path
stacks the positions into one ``(n, 2)`` array, computes the pairwise
distance matrix once, and derives the hull diameter, minimum separation
and broken-edge check from that single matrix; the seed implementation
rebuilt ``Point`` lists and recomputed pairwise distances separately for
each quantity.  This bench keeps a faithful copy of the seed
implementation and asserts the vectorized path beats it at n=100 robots
while producing the same numbers.
"""

from __future__ import annotations

import time

import numpy as np

from repro.engine.metrics import MetricsCollector
from repro.geometry.hull import ConvexHull
from repro.geometry.point import Point, max_pairwise_distance, pairwise_distances
from repro.geometry.sec import smallest_enclosing_circle
from repro.model.visibility import broken_edges
from repro.workloads import random_connected_configuration

N_ROBOTS = 100
OBSERVATIONS = 150


def _legacy_observe(collector: MetricsCollector, positions) -> tuple:
    """The seed's ``observe`` body: per-Point loops, one distance matrix per quantity."""
    pts = [Point.of(p) for p in positions]
    hull = ConvexHull.of(pts)
    broken = broken_edges(collector.initial_edges, pts, collector.visibility_range)
    if len(pts) >= 2:
        dist = pairwise_distances(pts)
        min_pairwise = float(dist[~np.eye(len(pts), dtype=bool)].min())
    else:
        min_pairwise = 0.0
    return (
        max_pairwise_distance(pts),
        hull.perimeter(),
        smallest_enclosing_circle(pts).radius if pts else 0.0,
        min_pairwise,
        len(broken),
    )


def _observe_many(collector: MetricsCollector, positions) -> float:
    started = time.perf_counter()
    for i in range(OBSERVATIONS):
        collector.observe(float(i), positions, i)
    return time.perf_counter() - started


def _legacy_many(collector: MetricsCollector, positions) -> float:
    started = time.perf_counter()
    for _ in range(OBSERVATIONS):
        _legacy_observe(collector, positions)
    return time.perf_counter() - started


def test_bench_vectorized_observe_beats_seed(benchmark):
    """The array-native observe is measurably faster than the seed loops at n=100."""
    configuration = random_connected_configuration(N_ROBOTS, seed=7)
    positions = list(configuration.positions)

    vectorized = MetricsCollector(visibility_range=configuration.visibility_range)
    vectorized.bind_initial(positions)
    legacy = MetricsCollector(visibility_range=configuration.visibility_range)
    legacy.bind_initial(positions)

    vectorized_seconds = benchmark.pedantic(
        lambda: _observe_many(vectorized, positions), rounds=1, iterations=1
    )
    legacy_seconds = _legacy_many(legacy, positions)

    print()
    print(
        f"observe x{OBSERVATIONS} at n={N_ROBOTS}: "
        f"vectorized {vectorized_seconds:.3f}s, seed {legacy_seconds:.3f}s, "
        f"speedup {legacy_seconds / vectorized_seconds:.2f}x"
    )

    # Same numbers, less time.
    sample = vectorized.samples[-1]
    reference = _legacy_observe(legacy, positions)
    assert sample.hull_diameter == reference[0]
    assert sample.hull_perimeter == reference[1]
    assert abs(sample.hull_radius - reference[2]) <= 1e-9
    assert sample.min_pairwise_distance == reference[3]
    assert sample.broken_edge_count == reference[4]
    assert vectorized_seconds < legacy_seconds
