"""Bench U1 — Section 6.2: unbounded Async is fine when V exceeds the initial diameter."""

from __future__ import annotations

from repro.experiments import unlimited_async


def test_bench_unlimited_async(benchmark):
    """KKNPS (k=1) under a fully asynchronous scheduler with V above the diameter."""
    result = benchmark.pedantic(
        lambda: unlimited_async.run(
            n_values=(5, 10, 20), seed=0, max_activations=30000, epsilon=0.05
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table().render())

    # Section 6.2's claim: convergence under unbounded Async, with every pair
    # of robots mutually visible throughout (no multiplicity detection used).
    assert result.all_converged_cohesively
    for row in result.rows:
        assert row.visibility_range > row.initial_diameter
        assert row.final_diameter <= 0.05 + 1e-9
