"""Bench X1 — Section 6.3.2: the algorithm generalised to three dimensions."""

from __future__ import annotations

from repro.experiments import extension_3d


def test_bench_extension_3d(benchmark):
    """Cohesive convergence of the 3D rule across workloads and asynchrony bounds."""
    result = benchmark.pedantic(
        lambda: extension_3d.run(
            random_sizes=(8, 16), k_values=(1, 2), max_rounds=3000, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table().render())

    # Every 3D run converges while preserving the initial visibility edges.
    assert result.all_converged_cohesively

    # The 1/k scaling slows convergence in 3D as it does in the plane.
    def rounds_for(k):
        return sum(row.rounds for row in result.rows if row.k == k)

    assert rounds_for(2) >= rounds_for(1)
