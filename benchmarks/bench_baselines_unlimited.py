"""Bench S2 — Section 1.2.2 baselines: CoG vs GCM under unlimited visibility."""

from __future__ import annotations

from repro.experiments import baselines_unlimited


def test_bench_baselines_unlimited(benchmark):
    """Rounds to halve the hull diameter: GCM at least as fast as CoG at every n."""
    result = benchmark.pedantic(
        lambda: baselines_unlimited.run(n_values=(4, 8, 16, 32), seed=0, max_rounds=300),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table().render())

    # Both baselines converge at every size.
    assert all(row.converged for row in result.rows)

    # The qualitative shape the cited analyses predict: the minbox algorithm
    # halves the hull diameter at least as fast as the centre-of-gravity
    # algorithm at every population size.
    assert result.gcm_never_slower_than_cog
