"""Bench L68 — Lemmas 6-8 (Figures 16-17): congregation bounds."""

from __future__ import annotations

from repro.experiments import congregation_lemmas


def test_bench_congregation_lemmas(benchmark):
    """Monte-Carlo verification of the Lemma-6/Lemma-8 bounds and hull nesting."""
    result = benchmark.pedantic(
        lambda: congregation_lemmas.run(
            configurations=15, n_robots=10, xi=0.5, k=2, seed=0,
            nesting_runs=3, nesting_activations=250,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table().render())

    # The experiment actually exercised every check.
    assert result.lemma6_checks > 0
    assert result.lemma8_checks > 0
    assert result.hull_nesting_checks > 0

    # Lemma 6, Lemma 8 and the hull-nesting invariant hold without exception.
    assert result.all_hold
