"""Bench F3 — Figure 3: safe-region comparison (Ando vs Katreniak vs KKNPS)."""

from __future__ import annotations

from repro.experiments import fig3_safe_regions


def test_bench_fig3_safe_regions(benchmark):
    """Regenerate the Figure-3 comparison and check its qualitative claims."""
    result = benchmark.pedantic(
        lambda: fig3_safe_regions.run(area_samples=10_000),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table().render())
    print()
    print(result.k_table().render())

    # The paper's safe region is far smaller than its predecessors and is
    # always contained in Ando's (for distant neighbours, with V known).
    for row in result.rows:
        assert row.kknps_area < row.ando_area
        assert row.kknps_inside_ando
        # A robot never plans a move longer than V_Y / 4 toward one neighbour.
        assert row.kknps_max_step <= row.separation / 2.0 + 1e-9

    # The 1/k scaling shrinks the planned moves proportionally.
    radii = [radius for _, radius, _ in result.k_sweep]
    ks = [k for k, _, _ in result.k_sweep]
    for (k1, r1), (k2, r2) in zip(zip(ks, radii), list(zip(ks, radii))[1:]):
        assert abs(r1 * k1 - r2 * k2) < 1e-12
