"""Figure 4 in action: why bounded asynchrony breaks the classical algorithm.

Replays the paper's five-robot counterexample under the 1-Async and
2-NestA adversarial timelines, once with Ando et al.'s
Go-To-The-Centre-Of-The-SEC algorithm (the mutually visible pair X, Y is
driven more than V apart) and once with the paper's algorithm at the
matching asynchrony bound (the pair stays visible).  It then samples the
instance family to show the failure is robust.

Run with:  python examples/adversarial_schedules.py
"""

from __future__ import annotations

from repro.adversary import canonical_instance, one_async_schedule, two_nesta_schedule
from repro.experiments import fig4_ando_failure


def describe_instance() -> None:
    instance = canonical_instance()
    print("Initial configuration (V = 1):")
    for name, point in (
        ("X", instance.x0),
        ("Y", instance.y0),
        ("A", instance.a),
        ("B", instance.b),
        ("C", instance.c),
    ):
        print(f"  {name}: ({point.x:+.3f}, {point.y:+.3f})")
    print(f"  connected: {instance.configuration().is_connected()}")
    print(f"  |X Y| = {instance.x0.distance_to(instance.y0):.3f} (exactly at the range)")


def describe_timeline(name: str, schedule) -> None:
    print(f"\n{name} timeline:")
    for activation in schedule:
        robot = {0: "X", 1: "Y"}.get(activation.robot_id, "?")
        print(
            f"  robot {robot}: Look at t={activation.look_time:5.2f}, "
            f"Move during [{activation.move_start_time:5.2f}, {activation.end_time:5.2f}]"
        )


def main() -> None:
    describe_instance()
    describe_timeline("1-Async (Figure 4a)", one_async_schedule())
    describe_timeline("2-NestA (Figure 4b)", two_nesta_schedule())

    print("\nReplaying both timelines with Ando's algorithm and with KKNPS:\n")
    result = fig4_ando_failure.run(with_search=True, search_candidates=100)
    print(result.to_table().render())
    print()
    print(
        f"randomised family search: {result.search_breaking_instances} of "
        f"{result.search_candidates} sampled instances also broke visibility "
        f"(best separation {result.search_best_separation:.4f})"
    )
    print()
    print("Ando breaks both timelines:     ", result.ando_breaks_both_timelines)
    print("KKNPS preserves both timelines: ", result.kknps_preserves_both_timelines)


if __name__ == "__main__":
    main()
