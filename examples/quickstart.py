"""Quickstart: converge a swarm of limited-visibility robots under bounded asynchrony.

Builds a random connected configuration, runs the paper's algorithm under
a k-Async scheduler, and prints the convergence and cohesion outcome
together with the hull-diameter trace.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    KAsyncScheduler,
    KKNPSAlgorithm,
    SimulationConfig,
    random_connected_configuration,
    run_simulation,
)


def main() -> None:
    k = 3  # the promised bound on asynchrony
    configuration = random_connected_configuration(15, seed=42)
    print(
        f"initial configuration: {len(configuration)} robots, "
        f"hull diameter {configuration.hull_diameter():.3f}, "
        f"connected: {configuration.is_connected()}"
    )

    result = run_simulation(
        configuration.positions,
        KKNPSAlgorithm(k=k),
        KAsyncScheduler(k=k),
        SimulationConfig(
            max_activations=30000,
            convergence_epsilon=0.02,
            k_bound=k,
            seed=42,
        ),
    )

    print(f"converged: {result.converged} (time {result.convergence_time})")
    print(f"cohesion (all initial visibility edges preserved): {result.cohesion_maintained}")
    print(f"activations processed: {result.activations_processed}")
    print(f"final hull diameter: {result.final_hull_diameter:.5f}")

    print("\nhull-diameter trace (every ~20th sample):")
    samples = result.metrics.samples
    for sample in samples[:: max(1, len(samples) // 20)]:
        print(f"  t = {sample.time:8.2f}   diameter = {sample.hull_diameter:.5f}")


if __name__ == "__main__":
    main()
