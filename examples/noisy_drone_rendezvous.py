"""A realistic scenario: rendezvous of a noisy drone swarm split across clusters.

A surveying swarm has ended a mission scattered into a few tight clusters
joined by thin corridors of stragglers (the clustered workload).  The
drones must gather: each has a limited sensing radius, a compass with a
small systematic distortion, range measurements with a few percent of
relative error, and actuators that sometimes stop a move early.  The
operators can only promise that no drone's activity overlaps more than
``k`` activations of another (bounded asynchrony from duty-cycling).

The script runs the paper's algorithm in exactly this setting and, for
contrast, the same swarm under an unlimited-visibility centre-of-gravity
controller (which needs global sensing the drones do not have) and the
classical Ando controller (which needs the exact sensing radius and exact
measurements).

Run with:  python examples/noisy_drone_rendezvous.py
"""

from __future__ import annotations

from repro import (
    AndoAlgorithm,
    CenterOfGravityAlgorithm,
    KAsyncScheduler,
    KKNPSAlgorithm,
    MotionModel,
    PerceptionModel,
    SimulationConfig,
    clustered_configuration,
    run_simulation,
)
from repro.analysis import TextTable
from repro.geometry import SymmetricDistortion


def main() -> None:
    k = 4
    swarm = clustered_configuration(n_clusters=3, robots_per_cluster=5, seed=11)
    print(
        f"swarm: {len(swarm)} drones in 3 clusters plus bridges, "
        f"hull diameter {swarm.hull_diameter():.2f}, sensing radius {swarm.visibility_range}"
    )

    noisy_perception = PerceptionModel(
        distance_error=0.03,
        distortion=SymmetricDistortion(amplitude=0.08, frequency=2),
        bias="random",
    )
    unreliable_motion = MotionModel(xi=0.4, deviation="quadratic", coefficient=0.1)

    table = TextTable(
        "Noisy drone rendezvous under 4-Async duty cycling",
        ["controller", "needs global info", "converged", "cohesive", "final spread"],
    )

    runs = [
        (
            "KKNPS (paper, k=4, error-tolerant)",
            KKNPSAlgorithm(k=k, distance_error_tolerance=0.03, skew_tolerance=0.08),
            "no",
        ),
        ("Ando (needs exact V)", AndoAlgorithm(), "sensing radius"),
        ("Centre of gravity (needs all positions)", CenterOfGravityAlgorithm(), "all positions"),
    ]
    for label, algorithm, needs in runs:
        result = run_simulation(
            swarm.positions,
            algorithm,
            KAsyncScheduler(k=k, progress_fraction=(0.4, 1.0)),
            SimulationConfig(
                visibility_range=swarm.visibility_range,
                perception=noisy_perception,
                motion=unreliable_motion,
                max_activations=40000,
                convergence_epsilon=0.05,
                k_bound=k,
                seed=11,
            ),
        )
        table.add_row(
            label,
            needs,
            result.converged,
            result.cohesion_maintained,
            result.final_hull_diameter,
        )
    print()
    print(table.render())
    print()
    print(
        "The paper's controller gathers the swarm using only locally sensed directions,\n"
        "with no knowledge of the sensing radius, while tolerating the measurement and\n"
        "actuation noise; the baselines rely on information the drones do not have."
    )


if __name__ == "__main__":
    main()
