"""Section 7 in action: unbounded asynchrony defeats every error-tolerant algorithm.

Builds the spiral initial configuration, runs the sliver-flattening
adversary that drags the whole tail around the hub while every move stays
legal (inside the neighbour lens, indistinguishable from threshold
distances), and shows that once the hub's long-pending forced move finally
executes, the initially-visible pair (X_A, X_B) is separated beyond the
visibility range — so Cohesive Convergence fails under unbounded Async.

Run with:  python examples/impossibility_demo.py [psi]
"""

from __future__ import annotations

import sys

from repro.experiments import impossibility


def main() -> None:
    psi = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    print(f"Running the Section-7 construction with turn angle psi = {psi} ...\n")
    result = impossibility.run(psi=psi, delta=0.05, skew=0.1)
    report = result.report

    print(result.headline_table())
    print()
    print(result.hub_move_table().render())
    print()
    print(result.witness_table().render())
    print()

    for line in report.summary_lines():
        print(line)
    print()
    print("every adversarial move legal (lens-confined):", report.construction_is_legal)
    print("hub-distance drift within the paper's 4*psi^2 bound:", report.drift_within_paper_bound)
    print("chain edges always perceivable as the threshold:",
          report.edges_indistinguishable_from_threshold)
    print("impossibility demonstrated:", result.impossibility_demonstrated)


if __name__ == "__main__":
    main()
